package netlist

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/tech"
)

var lib12 = cell.NewLibrary(tech.Variant12T())
var lib9 = cell.NewLibrary(tech.Variant9T())

// buildMini constructs: in -> INV u1 -> NAND u2 (with in2) -> DFF r1 -> out
func buildMini(t *testing.T) *Design {
	t.Helper()
	d := New("mini")
	inv := lib12.Smallest(cell.FuncInv)
	nand := lib12.Smallest(cell.FuncNand2)
	dff := lib12.Smallest(cell.FuncDFF)

	nIn, _ := d.AddNet("in")
	nIn2, _ := d.AddNet("in2")
	nMid, _ := d.AddNet("mid")
	nD, _ := d.AddNet("d")
	nQ, _ := d.AddNet("q")
	nClk, _ := d.AddNet("clk")
	nClk.IsClock = true

	if _, err := d.AddPort("in", cell.DirIn, nIn); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("in2", cell.DirIn, nIn2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("clk", cell.DirIn, nClk); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("out", cell.DirOut, nQ); err != nil {
		t.Fatal(err)
	}

	u1, err := d.AddInstance("u1", inv)
	if err != nil {
		t.Fatal(err)
	}
	u2, _ := d.AddInstance("u2", nand)
	r1, _ := d.AddInstance("r1", dff)

	for _, c := range []struct {
		inst *Instance
		pin  string
		net  *Net
	}{
		{u1, "A", nIn}, {u1, "Y", nMid},
		{u2, "A", nMid}, {u2, "B", nIn2}, {u2, "Y", nD},
		{r1, "D", nD}, {r1, "CK", nClk}, {r1, "Q", nQ},
	} {
		if err := d.Connect(c.inst, c.pin, c.net); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildAndValidate(t *testing.T) {
	d := buildMini(t)
	if len(d.Instances) != 3 || len(d.Nets) != 6 || len(d.Ports) != 4 {
		t.Errorf("counts: %d insts, %d nets, %d ports", len(d.Instances), len(d.Nets), len(d.Ports))
	}
	if d.Instance("u1") == nil || d.Net("mid") == nil || d.Port("clk") == nil {
		t.Error("name lookups failed")
	}
	if d.Instance("nope") != nil {
		t.Error("unknown instance should be nil")
	}
}

func TestDuplicateNames(t *testing.T) {
	d := New("dup")
	if _, err := d.AddInstance("a", lib12.Smallest(cell.FuncInv)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddInstance("a", lib12.Smallest(cell.FuncInv)); err == nil {
		t.Error("duplicate instance should fail")
	}
	if _, err := d.AddNet("n"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddNet("n"); err == nil {
		t.Error("duplicate net should fail")
	}
	n := d.Net("n")
	if _, err := d.AddPort("p", cell.DirIn, n); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("p", cell.DirOut, n); err == nil {
		t.Error("duplicate port should fail")
	}
}

func TestConnectErrors(t *testing.T) {
	d := New("err")
	n1, _ := d.AddNet("n1")
	n2, _ := d.AddNet("n2")
	u1, _ := d.AddInstance("u1", lib12.Smallest(cell.FuncInv))
	u2, _ := d.AddInstance("u2", lib12.Smallest(cell.FuncInv))

	if err := d.Connect(u1, "Z", n1); err == nil {
		t.Error("unknown pin should fail")
	}
	if err := d.Connect(u1, "Y", n1); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(u2, "Y", n1); err == nil {
		t.Error("double driver should fail")
	}
	if err := d.Connect(u1, "A", n2); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(u1, "A", n2); err == nil {
		t.Error("double connect of same pin should fail")
	}
	// Input port on an already driven net fails.
	if _, err := d.AddPort("bad", cell.DirIn, n1); err == nil {
		t.Error("port driving a driven net should fail")
	}
}

func TestNetQueries(t *testing.T) {
	d := buildMini(t)
	mid := d.Net("mid")
	if !mid.HasDriver() {
		t.Error("mid should have a driver")
	}
	if mid.Degree() != 2 {
		t.Errorf("mid degree = %d, want 2", mid.Degree())
	}
	q := d.Net("q")
	// Driver r1/Q plus port sink.
	if q.Degree() != 2 {
		t.Errorf("q degree = %d, want 2", q.Degree())
	}
	if got := q.TotalPinCap(); got != 4.0 {
		t.Errorf("q pin cap = %v, want the port's 4.0", got)
	}
	in := d.Net("in")
	if in.DriverPort == nil || in.DriverPort.Name != "in" {
		t.Error("in should be port-driven")
	}
	u1 := d.Instance("u1")
	u1.Loc = geom.Pt(3, 4)
	if mid.DriverLoc() != geom.Pt(3, 4) {
		t.Errorf("DriverLoc = %v", mid.DriverLoc())
	}
	locs := mid.PinLocs()
	if len(locs) != 2 {
		t.Errorf("PinLocs = %v", locs)
	}
}

func TestOutputAndInputNets(t *testing.T) {
	d := buildMini(t)
	u2 := d.Instance("u2")
	if d.OutputNet(u2) != d.Net("d") {
		t.Error("OutputNet(u2) wrong")
	}
	ins := d.InputNets(u2)
	if len(ins) != 2 {
		t.Errorf("InputNets(u2) = %d nets, want 2", len(ins))
	}
	r1 := d.Instance("r1")
	// DFF inputs include D and CK.
	if len(d.InputNets(r1)) != 2 {
		t.Error("DFF should have 2 input nets (D, CK)")
	}
	if d.NetOf(r1, "CK") != d.Net("clk") {
		t.Error("NetOf(r1, CK) wrong")
	}
	if d.NetOf(r1, "XX") != nil {
		t.Error("NetOf unknown pin should be nil")
	}
	if d.NetAt(r1, 99) != nil || d.NetAt(r1, -1) != nil {
		t.Error("NetAt out of range should be nil")
	}
}

func TestCrossTierNets(t *testing.T) {
	d := buildMini(t)
	mid := d.Net("mid")
	if mid.CrossesTiers() {
		t.Error("all cells on one tier: no crossing")
	}
	d.Instance("u2").Tier = tech.TierTop
	if !mid.CrossesTiers() {
		t.Error("u1 bottom → u2 top should cross")
	}
	s := d.ComputeStats()
	if s.CrossTierNets == 0 {
		t.Error("stats should count cross-tier nets")
	}
}

func TestReplaceMaster(t *testing.T) {
	d := buildMini(t)
	u1 := d.Instance("u1")
	x4 := lib12.ForDrive(cell.FuncInv, 4)
	if err := d.ReplaceMaster(u1, x4); err != nil {
		t.Fatal(err)
	}
	if u1.Master != x4 {
		t.Error("master not replaced")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Retarget to the 9-track equivalent keeps the interface.
	eq, err := lib9.Equivalent(u1.Master)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ReplaceMaster(u1, eq); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mismatched interface fails.
	if err := d.ReplaceMaster(u1, lib12.Smallest(cell.FuncNand2)); err == nil {
		t.Error("pin-count mismatch should fail")
	}
}

func TestInsertBuffer(t *testing.T) {
	d := New("buf")
	drv, _ := d.AddInstance("drv", lib12.Smallest(cell.FuncInv))
	n, _ := d.AddNet("n")
	nin, _ := d.AddNet("nin")
	if _, err := d.AddPort("in", cell.DirIn, nin); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(drv, "A", nin); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(drv, "Y", n); err != nil {
		t.Fatal(err)
	}
	var sinks []*Instance
	for i := 0; i < 6; i++ {
		s, _ := d.AddInstance("s"+string(rune('0'+i)), lib12.Smallest(cell.FuncInv))
		s.Loc = geom.Pt(float64(i), 10)
		if err := d.Connect(s, "A", n); err != nil {
			t.Fatal(err)
		}
		out, _ := d.AddNet("o" + string(rune('0'+i)))
		if err := d.Connect(s, "Y", out); err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, s)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	// Buffer the last three sinks.
	refs := d.Net("n").Sinks[3:6:6]
	moved := append([]PinRef{}, refs...)
	buf, newNet, err := d.InsertBuffer(d.Net("n"), moved, lib12.Smallest(cell.FuncBuf), "buf0")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Net("n").Sinks) != 4 { // 3 kept + buffer input
		t.Errorf("n sinks = %d, want 4", len(d.Net("n").Sinks))
	}
	if len(newNet.Sinks) != 3 {
		t.Errorf("newNet sinks = %d, want 3", len(newNet.Sinks))
	}
	// Buffer placed at centroid of moved sinks (x = (3+4+5)/3 = 4).
	if buf.Loc.X != 4 || buf.Loc.Y != 10 {
		t.Errorf("buffer at %v, want (4,10)", buf.Loc)
	}
	_ = sinks

	// Error cases.
	if _, _, err := d.InsertBuffer(d.Net("n"), nil, lib12.Smallest(cell.FuncBuf), "b1"); err == nil {
		t.Error("no sinks should fail")
	}
	bogus := []PinRef{{Inst: buf, Pin: 0}}
	if _, _, err := d.InsertBuffer(newNet, bogus, lib12.Smallest(cell.FuncBuf), "b2"); err == nil {
		t.Error("sink not on net should fail")
	}
}

func TestDisconnect(t *testing.T) {
	d := buildMini(t)
	mid := d.Net("mid")
	u2 := d.Instance("u2")
	ref := PinRef{Inst: u2, Pin: 0} // pin A
	if err := d.Disconnect(ref); err != nil {
		t.Fatal(err)
	}
	if len(mid.Sinks) != 0 {
		t.Error("sink not removed")
	}
	if d.NetOf(u2, "A") != nil {
		t.Error("pin still bound")
	}
	if err := d.Disconnect(ref); err == nil {
		t.Error("double disconnect should fail")
	}
	// Disconnect the driver too.
	u1 := d.Instance("u1")
	if err := d.Disconnect(PinRef{Inst: u1, Pin: 1}); err != nil {
		t.Fatal(err)
	}
	if mid.HasDriver() {
		t.Error("driver not removed")
	}
	if err := d.Disconnect(PinRef{}); err == nil {
		t.Error("invalid ref should fail")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := buildMini(t)
	// Orphan sink: net lists a pin the instance doesn't point back to.
	mid := d.Net("mid")
	u1 := d.Instance("u1")
	mid.Sinks = append(mid.Sinks, PinRef{Inst: u1, Pin: 0})
	if err := d.Validate(); err == nil {
		t.Error("corrupted sink list should fail validation")
	}
}

func TestStats(t *testing.T) {
	d := buildMini(t)
	s := d.ComputeStats()
	if s.Cells != 3 || s.Sequential != 1 || s.Nets != 6 || s.Ports != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.CellArea <= 0 {
		t.Error("cell area must be positive")
	}
	if s.Macros != 0 || s.MacroArea != 0 {
		t.Error("no macros expected")
	}
	if s.CellsByTier[0] != 3 || s.CellsByTier[1] != 0 {
		t.Errorf("tier counts = %v", s.CellsByTier)
	}

	ram := cell.NewRAMMacro("RAM1", 50, 40, 0.3, 2, 6)
	ri, _ := d.AddInstance("ram0", ram)
	ri.Tier = tech.TierTop
	s = d.ComputeStats()
	if s.Macros != 1 || s.MacroArea != 2000 {
		t.Errorf("macro stats = %+v", s)
	}
	if s.TotalArea() != s.CellArea+s.MacroArea {
		t.Error("TotalArea mismatch")
	}
	if s.CellsByTier[1] != 1 {
		t.Error("tier-top count wrong")
	}
}

func TestMasterHistogram(t *testing.T) {
	d := buildMini(t)
	h := d.MasterHistogram()
	if len(h) != 3 {
		t.Fatalf("histogram entries = %d, want 3", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].Name <= h[i-1].Name {
			t.Error("histogram not sorted")
		}
	}
}

func TestInstancesOnTier(t *testing.T) {
	d := buildMini(t)
	d.Instance("u2").Tier = tech.TierTop
	if got := len(d.InstancesOnTier(tech.TierTop)); got != 1 {
		t.Errorf("top tier count = %d", got)
	}
	if got := len(d.InstancesOnTier(tech.TierBottom)); got != 2 {
		t.Errorf("bottom tier count = %d", got)
	}
}

func TestWriteStructural(t *testing.T) {
	d := buildMini(t)
	var sb strings.Builder
	if err := d.WriteStructural(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"design mini", "inst u1", "net mid", "port clk"} {
		if !strings.Contains(out, want) {
			t.Errorf("structural dump missing %q", want)
		}
	}
}

func TestClone(t *testing.T) {
	d := buildMini(t)
	d.Instance("u1").Loc = geom.Pt(7, 8)
	d.Instance("u2").Tier = tech.TierTop
	c, err := d.Clone("mini2")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Instance("u1").Loc != geom.Pt(7, 8) {
		t.Error("clone lost location")
	}
	if c.Instance("u2").Tier != tech.TierTop {
		t.Error("clone lost tier")
	}
	if c.Net("clk") == nil || !c.Net("clk").IsClock {
		t.Error("clone lost clock flag")
	}
	// Mutating the clone must not affect the original.
	c.Instance("u1").Loc = geom.Pt(0, 0)
	if d.Instance("u1").Loc != geom.Pt(7, 8) {
		t.Error("clone aliases original")
	}
}

func TestCloneIntoRetarget(t *testing.T) {
	d := buildMini(t)
	c, err := d.CloneInto("mini9t", func(m *cell.Master) (*cell.Master, error) {
		return lib9.Equivalent(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, inst := range c.Instances {
		if inst.Master.Track != tech.Track9 {
			t.Errorf("instance %s still on %v", inst.Name, inst.Master.Track)
		}
	}
}

func TestConnSnapshot(t *testing.T) {
	d := buildMini(t)
	c := d.Conn()
	for _, inst := range d.Instances {
		if got, want := c.OutputNet(inst), d.OutputNet(inst); got != want {
			t.Errorf("Conn.OutputNet(%s) = %v, want %v", inst.Name, got, want)
		}
		got := c.InputNets(inst)
		want := d.InputNets(inst)
		if len(got) != len(want) {
			t.Fatalf("Conn.InputNets(%s) = %d nets, want %d", inst.Name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("Conn.InputNets(%s)[%d] mismatch", inst.Name, i)
			}
		}
	}
	if d.Conn() != c {
		t.Error("Conn not cached while topology unchanged")
	}

	// A structural edit must invalidate the snapshot; the rebuilt one
	// reflects the new connectivity.
	mid := d.Net("mid")
	var sink PinRef
	for _, s := range mid.Sinks {
		sink = s
		break
	}
	buf := d.Instances[0].Master // structurally an in/out pair; fine for InsertBuffer
	inst, nn, err := d.InsertBuffer(mid, []PinRef{sink}, buf, "cbuf")
	if err != nil {
		t.Fatalf("InsertBuffer: %v", err)
	}
	c2 := d.Conn()
	if c2 == c {
		t.Fatal("Conn snapshot not invalidated by structural edit")
	}
	if c2.OutputNet(inst) != nn {
		t.Error("rebuilt Conn misses inserted buffer's output")
	}
}
