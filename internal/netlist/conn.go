package netlist

import "repro/internal/cell"

// Conn is a dense, ID-indexed connectivity snapshot of a design: the
// driven net per instance as a flat slice and the input (and clock) nets
// per instance in CSR form. It is immutable once built and keyed on the
// design's topology revision, so analysis engines iterate connectivity
// as contiguous slice walks instead of per-call pin scans and per-call
// slice allocations (Design.InputNets allocates on every lookup; the
// snapshot's rows are shared).
//
// Rows are read-only: callers must not modify a returned slice.
type Conn struct {
	topoRev uint64
	out     []*Net // by instance ID; nil when undriven or no output pin
	inOff   []int32
	inDat   []*Net
}

// OutputNet returns the net driven by the instance, or nil.
func (c *Conn) OutputNet(inst *Instance) *Net {
	if inst.ID < 0 || inst.ID >= len(c.out) {
		return nil
	}
	return c.out[inst.ID]
}

// InputNets returns the nets on the instance's input and clock pins, in
// pin order, skipping unconnected pins. The slice aliases the snapshot's
// storage — treat it as read-only.
func (c *Conn) InputNets(inst *Instance) []*Net {
	if inst.ID < 0 || inst.ID+1 >= len(c.inOff) {
		return nil
	}
	return c.inDat[c.inOff[inst.ID]:c.inOff[inst.ID+1]]
}

// TopoRev returns the topology revision the snapshot was built at.
func (c *Conn) TopoRev() uint64 { return c.topoRev }

// Conn returns the design's connectivity snapshot, rebuilding it only
// when the topology revision has moved since the last call. Reading a
// quiescent design from several goroutines is safe (racing rebuilds
// produce identical snapshots; one wins the store); calling Conn
// concurrently with structural mutation is not, per the journal's
// quiescence contract.
func (d *Design) Conn() *Conn {
	if c := d.conn.Load(); c != nil && c.topoRev == d.jn.topoRev {
		return c
	}
	c := d.buildConn()
	d.conn.Store(c)
	return c
}

func (d *Design) buildConn() *Conn {
	c := &Conn{topoRev: d.jn.topoRev}
	ni := len(d.Instances)
	c.out = make([]*Net, ni)
	c.inOff = make([]int32, ni+1)
	total := 0
	for _, inst := range d.Instances {
		if inst.Master == nil {
			continue
		}
		for i := range inst.Master.Pins {
			if i < len(inst.nets) && inst.nets[i] != nil && inst.Master.Pins[i].Dir != cell.DirOut {
				total++
			}
		}
	}
	c.inDat = make([]*Net, 0, total)
	for id, inst := range d.Instances {
		c.inOff[id] = int32(len(c.inDat))
		if inst.Master == nil {
			continue
		}
		c.out[id] = d.OutputNet(inst)
		for i := range inst.Master.Pins {
			if i < len(inst.nets) && inst.nets[i] != nil && inst.Master.Pins[i].Dir != cell.DirOut {
				c.inDat = append(c.inDat, inst.nets[i])
			}
		}
	}
	c.inOff[ni] = int32(len(c.inDat))
	return c
}
