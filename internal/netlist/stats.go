package netlist

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cell"
	"repro/internal/tech"
)

// Stats summarizes a design's structural content. The flow engine reports
// these per configuration, and the evaluation harness turns them into the
// area/density rows of Tables VI and VII.
type Stats struct {
	Cells       int
	Macros      int
	Sequential  int
	ClockCells  int
	Nets        int
	Pins        int
	Ports       int
	CellArea    float64 // standard-cell area, µm²
	MacroArea   float64 // hard-macro area, µm²
	AreaByTier  [2]float64
	CellsByTier [2]int
	// CrossTierNets counts nets spanning both dies (each needs ≥1 MIV).
	CrossTierNets int
}

// TotalArea returns cell + macro area.
func (s Stats) TotalArea() float64 { return s.CellArea + s.MacroArea }

// ComputeStats walks the design once and returns its summary.
func (d *Design) ComputeStats() Stats {
	var s Stats
	s.Nets = len(d.Nets)
	s.Ports = len(d.Ports)
	for _, inst := range d.Instances {
		area := inst.Master.Area()
		if inst.Master.Function.IsMacro() {
			s.Macros++
			s.MacroArea += area
		} else {
			s.Cells++
			s.CellArea += area
		}
		if inst.Master.Function.IsSequential() {
			s.Sequential++
		}
		if inst.Master.Function.IsClockCell() {
			s.ClockCells++
		}
		s.AreaByTier[inst.Tier] += area
		s.CellsByTier[inst.Tier]++
		s.Pins += len(inst.Master.Pins)
	}
	for _, n := range d.Nets {
		if n.CrossesTiers() {
			s.CrossTierNets++
		}
	}
	return s
}

// MasterHistogram returns instance counts per master name, sorted by name.
// Useful for regression debugging and the structural writer.
func (d *Design) MasterHistogram() []struct {
	Name  string
	Count int
} {
	counts := make(map[string]int)
	for _, inst := range d.Instances {
		counts[inst.Master.Name]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Name  string
		Count int
	}, len(names))
	for i, n := range names {
		out[i].Name = n
		out[i].Count = counts[n]
	}
	return out
}

// InstancesOnTier returns the instances currently assigned to t.
func (d *Design) InstancesOnTier(t tech.Tier) []*Instance {
	var out []*Instance
	for _, inst := range d.Instances {
		if inst.Tier == t {
			out = append(out, inst)
		}
	}
	return out
}

// WriteStructural emits a human-readable structural dump: one line per
// instance (master, tier, location) and per net (driver → sinks). The
// format is diff-friendly for golden tests and debugging, not a standard
// interchange format.
func (d *Design) WriteStructural(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "design %s\n", d.Name); err != nil {
		return err
	}
	for _, p := range d.Ports {
		if _, err := fmt.Fprintf(w, "port %s %s (%.2f,%.2f)\n", p.Name, p.Dir, p.Loc.X, p.Loc.Y); err != nil {
			return err
		}
	}
	for _, inst := range d.Instances {
		if _, err := fmt.Fprintf(w, "inst %s %s tier=%d (%.2f,%.2f)\n",
			inst.Name, inst.Master.Name, int(inst.Tier), inst.Loc.X, inst.Loc.Y); err != nil {
			return err
		}
	}
	for _, n := range d.Nets {
		drv := "?"
		if n.Driver.Valid() {
			drv = n.Driver.Inst.Name + "/" + n.Driver.Spec().Name
		} else if n.DriverPort != nil {
			drv = "port:" + n.DriverPort.Name
		}
		if _, err := fmt.Fprintf(w, "net %s %s -> %d sinks\n", n.Name, drv, len(n.Sinks)+len(n.SinkPorts)); err != nil {
			return err
		}
	}
	return nil
}

// CloneInto deep-copies the design structure into a fresh Design, mapping
// every instance onto a master from pick (called with the original
// master). This is how a synthesized netlist is re-implemented in a
// different library (9-track vs 12-track synthesis runs), and how flows
// fork a working copy per configuration. Locations, tiers, and flags are
// preserved.
func (d *Design) CloneInto(name string, pick func(*cell.Master) (*cell.Master, error)) (*Design, error) {
	nd := New(name)
	for _, inst := range d.Instances {
		m, err := pick(inst.Master)
		if err != nil {
			return nil, fmt.Errorf("netlist: clone %s: %w", inst.Name, err)
		}
		ni, err := nd.AddInstance(inst.Name, m)
		if err != nil {
			return nil, err
		}
		ni.Tier = inst.Tier
		ni.Loc = inst.Loc
		ni.Fixed = inst.Fixed
	}
	for _, n := range d.Nets {
		nn, err := nd.AddNet(n.Name)
		if err != nil {
			return nil, err
		}
		nn.IsClock = n.IsClock
	}
	for _, p := range d.Ports {
		np, err := nd.AddPort(p.Name, p.Dir, nd.Net(p.Net.Name))
		if err != nil {
			return nil, err
		}
		np.Loc = p.Loc
		np.Cap = p.Cap
	}
	for _, n := range d.Nets {
		nn := nd.Net(n.Name)
		if n.Driver.Valid() {
			ni := nd.Instance(n.Driver.Inst.Name)
			if err := nd.Connect(ni, n.Driver.Spec().Name, nn); err != nil {
				return nil, err
			}
		}
		for _, s := range n.Sinks {
			ni := nd.Instance(s.Inst.Name)
			if err := nd.Connect(ni, s.Spec().Name, nn); err != nil {
				return nil, err
			}
		}
	}
	return nd, nil
}

// Clone returns an identical deep copy of the design.
func (d *Design) Clone(name string) (*Design, error) {
	return d.CloneInto(name, func(m *cell.Master) (*cell.Master, error) { return m, nil })
}
