// Package netlist holds the gate-level design representation shared by
// every flow stage: instances bound to cell masters, nets with one driver
// and many sinks, and top-level ports. It also provides the ECO editing
// primitives (resize, retarget, buffer insertion) that synthesis and the
// repartitioning loop rely on.
package netlist

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Instance is one placed cell in the design.
type Instance struct {
	ID     int
	Name   string
	Master *cell.Master
	// Tier is the die the instance sits on; always TierBottom for 2-D.
	// Mutate through SetTier once the design has observers (see
	// journal.go); direct writes are fine before that.
	Tier tech.Tier
	// Loc is the cell center in µm. Mutate through SetLoc once the design
	// has observers; direct writes are fine before that.
	Loc geom.Point
	// Fixed marks pre-placed objects (macros) the placer must not move.
	Fixed bool
	// nets[i] is the net bound to Master.Pins[i], nil when unconnected.
	nets []*Net
	// outPin is the index of the master's output pin, -1 if it has none.
	// Cached at AddInstance so OutputNet is a slice lookup; ReplaceMaster
	// requires an identical pin interface, so the index never moves.
	outPin int16
	// design points back at the owning Design for the journaled mutators.
	design *Design
}

// SetLoc moves the instance, journaling the change: every connected net's
// extraction revision is bumped and observers are notified. A no-op when
// the location is bit-identical, so re-legalizing an unchanged region
// leaves caches warm.
func (inst *Instance) SetLoc(p geom.Point) {
	if inst.Loc == p {
		return
	}
	inst.Loc = p
	if d := inst.design; d != nil {
		d.bumpInst(inst)
		d.bumpNetsOf(inst)
		d.notify(Change{Kind: ChangeLoc, Inst: inst})
	}
}

// InitLoc places the instance during construction — the documented
// pre-journal bulk-init API for generators, the global placer, and the
// floorplanner, whose hot loops rewrite millions of locations before any
// persistent consumer (sta.Timer, a live route.Cache) exists. It bumps
// the revision counters so pull-based caches stay coherent but skips
// observer notification; if an observer is attached it delegates to
// SetLoc, so the call is always safe.
func (inst *Instance) InitLoc(p geom.Point) {
	d := inst.design
	if d != nil && len(d.jn.observers) > 0 {
		inst.SetLoc(p)
		return
	}
	if inst.Loc == p {
		return
	}
	inst.Loc = p
	if d != nil {
		d.bumpInst(inst)
		d.bumpNetsOf(inst)
	}
}

// InitTier assigns the instance's die during construction — the tier
// counterpart of InitLoc, with the same bump-but-don't-notify semantics
// and the same delegation to SetTier once an observer is attached.
func (inst *Instance) InitTier(t tech.Tier) {
	d := inst.design
	if d != nil && len(d.jn.observers) > 0 {
		inst.SetTier(t)
		return
	}
	if inst.Tier == t {
		return
	}
	inst.Tier = t
	if d != nil {
		d.bumpInst(inst)
		d.bumpNetsOf(inst)
	}
}

// SetTier reassigns the instance's die, journaling the change (connected
// nets gain or lose tier crossings, so their extraction revisions bump).
// A no-op when the tier is unchanged.
func (inst *Instance) SetTier(t tech.Tier) {
	if inst.Tier == t {
		return
	}
	inst.Tier = t
	if d := inst.design; d != nil {
		d.bumpInst(inst)
		d.bumpNetsOf(inst)
		d.notify(Change{Kind: ChangeTier, Inst: inst})
	}
}

// PinRef identifies one pin of one instance.
type PinRef struct {
	Inst *Instance
	// Pin indexes Inst.Master.Pins.
	Pin int
}

// Spec returns the pin's master-level description.
func (p PinRef) Spec() cell.PinSpec { return p.Inst.Master.Pins[p.Pin] }

// Loc returns the pin location; pins are modeled at the cell center.
func (p PinRef) Loc() geom.Point { return p.Inst.Loc }

// Valid reports whether the reference points at a real pin of a real
// master (a master-less instance has no pins to reference).
func (p PinRef) Valid() bool {
	return p.Inst != nil && p.Inst.Master != nil && p.Pin >= 0 && p.Pin < len(p.Inst.Master.Pins)
}

// Port is a top-level design terminal.
type Port struct {
	Name string
	Dir  cell.Dir
	Net  *Net
	// Loc is the pad location on the die boundary.
	Loc geom.Point
	// Cap is the external load presented by an output port, in fF.
	Cap float64
}

// Net connects one driver to a set of sinks.
type Net struct {
	ID   int
	Name string
	// Driver is the driving instance pin; invalid if the net is driven by
	// an input port instead.
	Driver PinRef
	// DriverPort is the input port driving the net, if any.
	DriverPort *Port
	// Sinks are the instance input pins on the net.
	Sinks []PinRef
	// SinkPorts are output ports fed by the net.
	SinkPorts []*Port
	// IsClock marks the clock distribution net(s).
	IsClock bool
}

// HasDriver reports whether the net has either kind of driver.
func (n *Net) HasDriver() bool { return n.DriverPort != nil || n.Driver.Valid() }

// Degree returns the total pin count on the net (driver + sinks + ports).
func (n *Net) Degree() int {
	d := len(n.Sinks) + len(n.SinkPorts)
	if n.HasDriver() {
		d++
	}
	return d
}

// DriverLoc returns the location of the net's driver.
func (n *Net) DriverLoc() geom.Point {
	if n.Driver.Valid() {
		return n.Driver.Loc()
	}
	if n.DriverPort != nil {
		return n.DriverPort.Loc
	}
	return geom.Point{}
}

// PinLocs returns the locations of every pin on the net, driver first.
func (n *Net) PinLocs() []geom.Point {
	return n.AppendPinLocs(make([]geom.Point, 0, n.Degree()))
}

// AppendPinLocs appends every pin location on the net to dst, driver
// first, and returns the extended slice — the allocation-free form of
// PinLocs for callers with a reusable buffer (the router's per-net hot
// paths).
func (n *Net) AppendPinLocs(dst []geom.Point) []geom.Point {
	if n.Driver.Valid() {
		dst = append(dst, n.Driver.Loc())
	} else if n.DriverPort != nil {
		dst = append(dst, n.DriverPort.Loc)
	}
	for _, s := range n.Sinks {
		dst = append(dst, s.Loc())
	}
	for _, p := range n.SinkPorts {
		dst = append(dst, p.Loc)
	}
	return dst
}

// TotalPinCap returns the capacitance of all sink pins plus sink-port
// loads, in fF — the gate-load part of the driver's output load.
func (n *Net) TotalPinCap() float64 {
	c := 0.0
	for _, s := range n.Sinks {
		c += s.Spec().Cap
	}
	for _, p := range n.SinkPorts {
		c += p.Cap
	}
	return c
}

// CrossesTiers reports whether the net spans both dies of a 3-D design and
// therefore needs MIVs.
func (n *Net) CrossesTiers() bool {
	var seen [2]bool
	if n.Driver.Valid() {
		seen[n.Driver.Inst.Tier] = true
	}
	for _, s := range n.Sinks {
		seen[s.Inst.Tier] = true
		if seen[0] && seen[1] {
			return true
		}
	}
	return seen[0] && seen[1]
}

// Design is a complete gate-level netlist.
type Design struct {
	Name      string
	Instances []*Instance
	Nets      []*Net
	Ports     []*Port

	instByName map[string]*Instance
	netByName  map[string]*Net
	portByName map[string]*Port

	// jn tracks revisions and observers for the change journal
	// (journal.go).
	jn journal

	// conn caches the topology-keyed connectivity snapshot (conn.go).
	conn atomic.Pointer[Conn]
}

// New creates an empty design.
func New(name string) *Design {
	return &Design{
		Name:       name,
		instByName: make(map[string]*Instance),
		netByName:  make(map[string]*Net),
		portByName: make(map[string]*Port),
	}
}

// AddInstance creates a new instance of master. Names must be unique.
func (d *Design) AddInstance(name string, m *cell.Master) (*Instance, error) {
	if _, dup := d.instByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate instance %q", name)
	}
	inst := &Instance{
		ID:     len(d.Instances),
		Name:   name,
		Master: m,
		nets:   make([]*Net, len(m.Pins)),
		outPin: -1,
		design: d,
	}
	for i, p := range m.Pins {
		if p.Dir == cell.DirOut {
			inst.outPin = int16(i)
			break
		}
	}
	d.Instances = append(d.Instances, inst)
	d.instByName[name] = inst
	d.jn.instRev = append(d.jn.instRev, 0)
	d.bumpTopo()
	return inst, nil
}

// AddNet creates a new, unconnected net.
func (d *Design) AddNet(name string) (*Net, error) {
	if _, dup := d.netByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate net %q", name)
	}
	n := &Net{ID: len(d.Nets), Name: name}
	d.Nets = append(d.Nets, n)
	d.netByName[name] = n
	d.jn.netRev = append(d.jn.netRev, 0)
	d.bumpTopo()
	return n, nil
}

// AddPort creates a top-level port. Input ports drive their net; output
// ports load it.
func (d *Design) AddPort(name string, dir cell.Dir, n *Net) (*Port, error) {
	if _, dup := d.portByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate port %q", name)
	}
	p := &Port{Name: name, Dir: dir, Net: n}
	switch dir {
	case cell.DirIn, cell.DirClk:
		if n.HasDriver() {
			return nil, fmt.Errorf("netlist: net %q already driven", n.Name)
		}
		n.DriverPort = p
	case cell.DirOut:
		p.Cap = 4.0 // default external load, fF
		n.SinkPorts = append(n.SinkPorts, p)
	}
	d.Ports = append(d.Ports, p)
	d.portByName[name] = p
	d.bumpNet(n)
	d.bumpTopo()
	return p, nil
}

// Connect binds the named pin of inst to net n.
func (d *Design) Connect(inst *Instance, pinName string, n *Net) error {
	idx := -1
	for i, p := range inst.Master.Pins {
		if p.Name == pinName {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("netlist: instance %q (%s) has no pin %q", inst.Name, inst.Master.Name, pinName)
	}
	if inst.nets[idx] != nil {
		return fmt.Errorf("netlist: pin %s/%s already connected", inst.Name, pinName)
	}
	ref := PinRef{Inst: inst, Pin: idx}
	if inst.Master.Pins[idx].Dir == cell.DirOut {
		if n.HasDriver() {
			return fmt.Errorf("netlist: net %q already driven", n.Name)
		}
		n.Driver = ref
	} else {
		n.Sinks = append(n.Sinks, ref)
	}
	inst.nets[idx] = n
	d.bumpNet(n)
	d.bumpTopo()
	return nil
}

// NetOf returns the net on the named pin of inst (nil if unconnected or no
// such pin).
func (d *Design) NetOf(inst *Instance, pinName string) *Net {
	for i, p := range inst.Master.Pins {
		if p.Name == pinName {
			return inst.nets[i]
		}
	}
	return nil
}

// NetAt returns the net bound to pin index i of inst.
func (d *Design) NetAt(inst *Instance, i int) *Net {
	if i < 0 || i >= len(inst.nets) {
		return nil
	}
	return inst.nets[i]
}

// Instance returns the named instance, or nil.
func (d *Design) Instance(name string) *Instance { return d.instByName[name] }

// Net returns the named net, or nil.
func (d *Design) Net(name string) *Net { return d.netByName[name] }

// Port returns the named port, or nil.
func (d *Design) Port(name string) *Port { return d.portByName[name] }

// OutputNet returns the net on the instance's output pin, or nil. A
// single slice lookup: the output pin index is cached at AddInstance.
func (d *Design) OutputNet(inst *Instance) *Net {
	return d.NetAt(inst, int(inst.outPin))
}

// InputNets returns the nets on the instance's input (and clock) pins.
func (d *Design) InputNets(inst *Instance) []*Net {
	var out []*Net
	for i, p := range inst.Master.Pins {
		if p.Dir != cell.DirOut {
			if n := d.NetAt(inst, i); n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}
