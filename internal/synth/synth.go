// Package synth provides the synthesis-lite transformations the flows run
// on a generated netlist: electrical sizing (drive selection against
// output load), fanout buffering, and library retargeting. Timing-driven
// repair lives in the flow engine (internal/core) because it needs STA in
// the loop; this package handles the electrical-rule part that commercial
// synthesis would have done before handoff.
package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Options tunes the synthesis transformations.
type Options struct {
	// MaxFanout is the sink-count ceiling per net before buffering splits
	// it. Clock nets are exempt (CTS owns them).
	MaxFanout int
	// WireCapPerSink estimates pre-placement wire capacitance per sink in
	// fF, standing in for unknown net topology during sizing.
	WireCapPerSink float64
	// MaxPasses bounds the sizing fix-point iteration.
	MaxPasses int
}

// DefaultOptions returns the flow defaults.
func DefaultOptions() Options {
	return Options{MaxFanout: 24, WireCapPerSink: 0.8, MaxPasses: 6}
}

// SizeForLoad walks every combinational and sequential cell and bumps its
// drive strength until the estimated output load fits within the master's
// MaxLoad. Because upsizing a cell raises the input capacitance seen by
// its fanin, the pass iterates to a fix point (bounded by MaxPasses).
// Returns the number of instances resized.
func SizeForLoad(d *netlist.Design, lib *cell.Library, opt Options) (int, error) {
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 1
	}
	resized := 0
	for pass := 0; pass < opt.MaxPasses; pass++ {
		changed := 0
		for _, inst := range d.Instances {
			if inst.Master.Function.IsMacro() {
				continue
			}
			out := d.OutputNet(inst)
			if out == nil {
				continue
			}
			load := out.TotalPinCap() + float64(len(out.Sinks))*opt.WireCapPerSink
			for load > inst.Master.MaxLoad {
				up := lib.NextDriveUp(inst.Master)
				if up == nil {
					break
				}
				if err := d.ReplaceMaster(inst, up); err != nil {
					return resized, fmt.Errorf("synth: sizing %s: %w", inst.Name, err)
				}
				changed++
			}
		}
		resized += changed
		if changed == 0 {
			break
		}
	}
	return resized, nil
}

// BufferFanout splits every signal net with more than opt.MaxFanout sinks
// by inserting buffers, each taking over a contiguous chunk of sinks.
// When the design is placed, sinks are chunked by spatial order (x-major)
// so buffer subtrees stay local; unplaced designs chunk in pin order.
// The pass recurses until no net exceeds the limit. Returns the number of
// buffers added.
func BufferFanout(d *netlist.Design, lib *cell.Library, opt Options) (int, error) {
	if opt.MaxFanout < 2 {
		return 0, fmt.Errorf("synth: MaxFanout must be ≥ 2, got %d", opt.MaxFanout)
	}
	buf := lib.Strongest(cell.FuncBuf)
	if buf == nil {
		return 0, fmt.Errorf("synth: library has no buffers")
	}
	added := 0
	// Iterate because inserted buffer nets may themselves need splitting
	// (they won't, by construction, but the driver net gains buffer-input
	// sinks and may still exceed the limit for huge fanouts).
	for rounds := 0; rounds < 64; rounds++ {
		var work []*netlist.Net
		for _, n := range d.Nets {
			if n.IsClock || !n.HasDriver() {
				continue
			}
			if len(n.Sinks) > opt.MaxFanout {
				work = append(work, n)
			}
		}
		if len(work) == 0 {
			return added, nil
		}
		for _, n := range work {
			if err := splitNet(d, n, buf, opt.MaxFanout, &added); err != nil {
				return added, err
			}
		}
	}
	return added, fmt.Errorf("synth: fanout buffering did not converge")
}

func splitNet(d *netlist.Design, n *netlist.Net, buf *cell.Master, maxFan int, added *int) error {
	// Order sinks spatially so each buffer serves a local cluster.
	sinks := append([]netlist.PinRef{}, n.Sinks...)
	sortByLocation(sinks)

	// Chunk into groups of maxFan; leave up to maxFan groups directly on
	// the net (the buffers themselves become the net's sinks).
	for len(sinks) > maxFan {
		group := sinks[:maxFan]
		sinks = sinks[maxFan:]
		name := fmt.Sprintf("fbuf%d_%s", *added, n.Name)
		if _, _, err := d.InsertBuffer(n, group, buf, name); err != nil {
			return fmt.Errorf("synth: buffering net %s: %w", n.Name, err)
		}
		*added++
	}
	return nil
}

// sortByLocation orders pin refs x-major then y (insertion sort is fine:
// groups are small and mostly ordered already for generated designs).
func sortByLocation(refs []netlist.PinRef) {
	less := func(a, b netlist.PinRef) bool {
		la, lb := a.Loc(), b.Loc()
		if la.X != lb.X {
			return la.X < lb.X
		}
		if la.Y != lb.Y {
			return la.Y < lb.Y
		}
		return a.Inst.ID < b.Inst.ID
	}
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && less(refs[j], refs[j-1]); j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// Retarget remaps every instance matched by pred onto the equivalent
// master (same function and drive) from lib — the primitive behind the
// heterogeneous flow's 12-track → 9-track top-tier conversion. A nil pred
// retargets every non-macro instance. Returns the number remapped.
func Retarget(d *netlist.Design, lib *cell.Library, pred func(*netlist.Instance) bool) (int, error) {
	n := 0
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			continue
		}
		if pred != nil && !pred(inst) {
			continue
		}
		if inst.Master.Track == lib.Variant.Track {
			continue
		}
		eq, err := lib.Equivalent(inst.Master)
		if err != nil {
			return n, fmt.Errorf("synth: retarget %s: %w", inst.Name, err)
		}
		if err := d.ReplaceMaster(inst, eq); err != nil {
			return n, fmt.Errorf("synth: retarget %s: %w", inst.Name, err)
		}
		n++
	}
	return n, nil
}

// InsertLevelShifters places a voltage level shifter on every signal net
// that crosses tiers: the cross-tier sinks move behind a FuncLevelSh
// instance on the driver's tier. This is the alternative the paper
// REJECTS for monolithic heterogeneous designs (Sec. III-B): with ≈15 %
// of nets crossing tiers, the added cells degrade timing and power across
// a large number of paths — the ablation benchmark quantifies exactly
// that. libOf selects the shifter's library by tier. Returns the number
// of shifters inserted.
func InsertLevelShifters(d *netlist.Design, libOf func(t tech.Tier) *cell.Library) (int, error) {
	// Snapshot the net list first: insertion adds nets.
	nets := append([]*netlist.Net{}, d.Nets...)
	inserted := 0
	for _, n := range nets {
		if n.IsClock || !n.Driver.Valid() {
			continue
		}
		drvTier := n.Driver.Inst.Tier
		var cross []netlist.PinRef
		for _, s := range n.Sinks {
			if s.Inst.Tier != drvTier {
				cross = append(cross, s)
			}
		}
		if len(cross) == 0 {
			continue
		}
		lib := libOf(drvTier)
		ls := lib.Smallest(cell.FuncLevelSh)
		if ls == nil {
			return inserted, fmt.Errorf("synth: %v library has no level shifter", lib.Variant.Track)
		}
		name := fmt.Sprintf("ls%d_%s", inserted, n.Name)
		inst, _, err := d.InsertBuffer(n, cross, ls, name)
		if err != nil {
			return inserted, fmt.Errorf("synth: level shifter on %s: %w", n.Name, err)
		}
		inst.SetTier(drvTier)
		inserted++
	}
	return inserted, nil
}

// Prepare runs the standard pre-placement synthesis sequence — fanout
// buffering then load-based sizing — matching what the pseudo-3-D stage
// expects from its input netlist.
func Prepare(d *netlist.Design, lib *cell.Library, opt Options) error {
	if _, err := BufferFanout(d, lib, opt); err != nil {
		return err
	}
	if _, err := SizeForLoad(d, lib, opt); err != nil {
		return err
	}
	return d.Validate()
}

// SpreadPorts distributes the design's ports evenly around the perimeter
// of the given die outline — the I/O placement step of floorplanning.
func SpreadPorts(d *netlist.Design, outline geom.Rect) {
	n := len(d.Ports)
	if n == 0 {
		return
	}
	per := 2 * (outline.W() + outline.H())
	step := per / float64(n)
	pos := step / 2
	for _, p := range d.Ports {
		p.Loc = perimeterPoint(outline, pos)
		pos += step
	}
}

// perimeterPoint maps a distance along the outline perimeter (clockwise
// from the lower-left corner) to a boundary point.
func perimeterPoint(r geom.Rect, dist float64) geom.Point {
	w, h := r.W(), r.H()
	per := 2 * (w + h)
	for dist < 0 {
		dist += per
	}
	for dist >= per {
		dist -= per
	}
	switch {
	case dist < w:
		return geom.Pt(r.Lx+dist, r.Ly)
	case dist < w+h:
		return geom.Pt(r.Ux, r.Ly+(dist-w))
	case dist < 2*w+h:
		return geom.Pt(r.Ux-(dist-w-h), r.Uy)
	default:
		return geom.Pt(r.Lx, r.Uy-(dist-2*w-h))
	}
}
