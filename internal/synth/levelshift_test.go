package synth

import (
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// crossTierDesign: drivers on the bottom, a mix of same- and cross-tier
// sinks.
func crossTierDesign(t *testing.T) *netlist.Design {
	t.Helper()
	d := netlist.New("xt")
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		drv, _ := d.AddInstance(fmt.Sprintf("drv%d", i), lib12.Smallest(cell.FuncInv))
		if err := d.Connect(drv, "A", in); err != nil {
			t.Fatal(err)
		}
		n, _ := d.AddNet(fmt.Sprintf("n%d", i))
		if err := d.Connect(drv, "Y", n); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			s, _ := d.AddInstance(fmt.Sprintf("s%d_%d", i, j), lib9.Smallest(cell.FuncInv))
			// Sink 0 stays on the driver tier; others cross.
			if j > 0 {
				s.Tier = tech.TierTop
			}
			if err := d.Connect(s, "A", n); err != nil {
				t.Fatal(err)
			}
			o, _ := d.AddNet(fmt.Sprintf("o%d_%d", i, j))
			if err := d.Connect(s, "Y", o); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func libOfTier(t tech.Tier) *cell.Library {
	if t == tech.TierTop {
		return lib9
	}
	return lib12
}

func TestInsertLevelShifters(t *testing.T) {
	d := crossTierDesign(t)
	before := len(d.Instances)
	n, err := InsertLevelShifters(d, libOfTier)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // one shifter per crossing net
		t.Errorf("inserted %d shifters, want 4", n)
	}
	if len(d.Instances) != before+4 {
		t.Errorf("instance count %d, want %d", len(d.Instances), before+4)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every shifter sits on the driver tier and drives only cross-tier
	// sinks.
	shifters := 0
	for _, inst := range d.Instances {
		if inst.Master.Function != cell.FuncLevelSh {
			continue
		}
		shifters++
		if inst.Tier != tech.TierBottom {
			t.Errorf("shifter %s on %v, want driver tier", inst.Name, inst.Tier)
		}
		out := d.OutputNet(inst)
		for _, s := range out.Sinks {
			if s.Inst.Tier != tech.TierTop {
				t.Errorf("shifter %s drives same-tier sink %s", inst.Name, s.Inst.Name)
			}
		}
	}
	if shifters != 4 {
		t.Errorf("found %d shifters", shifters)
	}
	// Same-tier sinks stay directly on the original nets.
	n0 := d.Net("n0")
	foundDirect := false
	for _, s := range n0.Sinks {
		if s.Inst.Name == "s0_0" {
			foundDirect = true
		}
	}
	if !foundDirect {
		t.Error("same-tier sink was moved behind the shifter")
	}
	// Idempotent on a now shifter-isolated design: the shifter output
	// nets cross but their drivers are the shifters themselves... the
	// crossing remains (shifter on bottom driving top sinks), so a second
	// pass would shift again — callers run it once. Just confirm the
	// count is deterministic.
	d2 := crossTierDesign(t)
	n2, err := InsertLevelShifters(d2, libOfTier)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Errorf("non-deterministic insertion: %d vs %d", n2, n)
	}
}

func TestInsertLevelShiftersNoCrossings(t *testing.T) {
	d := bigFanoutDesign(t, 6) // single-tier fixture from synth_test.go
	n, err := InsertLevelShifters(d, libOfTier)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("inserted %d shifters on a single-tier design", n)
	}
}
