package synth

import (
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var (
	lib12 = cell.NewLibrary(tech.Variant12T())
	lib9  = cell.NewLibrary(tech.Variant9T())
)

// bigFanoutDesign builds one driver with n sink inverters.
func bigFanoutDesign(t *testing.T, n int) *netlist.Design {
	t.Helper()
	d := netlist.New("fan")
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	drv, _ := d.AddInstance("drv", lib12.Smallest(cell.FuncInv))
	net, _ := d.AddNet("big")
	if err := d.Connect(drv, "A", in); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(drv, "Y", net); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s, _ := d.AddInstance(fmt.Sprintf("s%d", i), lib12.Smallest(cell.FuncInv))
		s.Loc = geom.Pt(float64(i%10), float64(i/10))
		if err := d.Connect(s, "A", net); err != nil {
			t.Fatal(err)
		}
		o, _ := d.AddNet(fmt.Sprintf("o%d", i))
		if err := d.Connect(s, "Y", o); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBufferFanoutSplitsBigNets(t *testing.T) {
	d := bigFanoutDesign(t, 100)
	opt := DefaultOptions()
	added, err := BufferFanout(d, lib12, opt)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("expected buffers to be added")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nets {
		if !n.IsClock && len(n.Sinks) > opt.MaxFanout {
			t.Errorf("net %s still has %d sinks", n.Name, len(n.Sinks))
		}
	}
}

func TestBufferFanoutSkipsClockNets(t *testing.T) {
	d := bigFanoutDesign(t, 80)
	d.Net("big").IsClock = true
	added, err := BufferFanout(d, lib12, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("clock net was buffered: %d buffers", added)
	}
}

func TestBufferFanoutSmallNetUntouched(t *testing.T) {
	d := bigFanoutDesign(t, 5)
	added, err := BufferFanout(d, lib12, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("small net got %d buffers", added)
	}
}

func TestBufferFanoutBadOptions(t *testing.T) {
	d := bigFanoutDesign(t, 5)
	if _, err := BufferFanout(d, lib12, Options{MaxFanout: 1}); err == nil {
		t.Error("MaxFanout=1 should fail")
	}
}

func TestSizeForLoadUpsizesOverloadedDriver(t *testing.T) {
	d := bigFanoutDesign(t, 23) // just under the fanout limit
	opt := DefaultOptions()
	drv := d.Instance("drv")
	before := drv.Master.Drive
	n, err := SizeForLoad(d, lib12, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || drv.Master.Drive <= before {
		t.Errorf("driver not upsized: drive %d → %d", before, drv.Master.Drive)
	}
	// Load must now fit (or driver is at max drive).
	out := d.OutputNet(drv)
	load := out.TotalPinCap() + float64(len(out.Sinks))*opt.WireCapPerSink
	if load > drv.Master.MaxLoad && lib12.NextDriveUp(drv.Master) != nil {
		t.Errorf("driver still overloaded: %v > %v", load, drv.Master.MaxLoad)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSizeForLoadIdempotent(t *testing.T) {
	d := bigFanoutDesign(t, 23)
	opt := DefaultOptions()
	if _, err := SizeForLoad(d, lib12, opt); err != nil {
		t.Fatal(err)
	}
	n2, err := SizeForLoad(d, lib12, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("second sizing pass changed %d cells", n2)
	}
}

func TestRetargetAll(t *testing.T) {
	d := bigFanoutDesign(t, 10)
	n, err := Retarget(d, lib9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 { // driver + 10 sinks
		t.Errorf("retargeted %d, want 11", n)
	}
	for _, inst := range d.Instances {
		if inst.Master.Track != tech.Track9 {
			t.Errorf("%s still on %v", inst.Name, inst.Master.Track)
		}
	}
	// Re-running is a no-op.
	n, err = Retarget(d, lib9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("idempotent retarget changed %d", n)
	}
}

func TestRetargetWithPredicate(t *testing.T) {
	d := bigFanoutDesign(t, 10)
	d.Instance("s3").Tier = tech.TierTop
	d.Instance("s7").Tier = tech.TierTop
	n, err := Retarget(d, lib9, func(i *netlist.Instance) bool { return i.Tier == tech.TierTop })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("retargeted %d, want 2", n)
	}
	if d.Instance("s3").Master.Track != tech.Track9 {
		t.Error("s3 not retargeted")
	}
	if d.Instance("drv").Master.Track != tech.Track12 {
		t.Error("drv should stay 12-track")
	}
}

func TestPrepareOnGeneratedDesign(t *testing.T) {
	d, err := designs.Generate(designs.CPU, lib12, designs.Params{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Prepare(d, lib12, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// No signal net may exceed the fanout cap afterwards.
	for _, n := range d.Nets {
		if !n.IsClock && len(n.Sinks) > DefaultOptions().MaxFanout {
			t.Errorf("net %s has fanout %d after Prepare", n.Name, len(n.Sinks))
		}
	}
}

func TestSpreadPorts(t *testing.T) {
	d := bigFanoutDesign(t, 4)
	outline := geom.R(0, 0, 100, 50)
	SpreadPorts(d, outline)
	for _, p := range d.Ports {
		onEdge := p.Loc.X == outline.Lx || p.Loc.X == outline.Ux ||
			p.Loc.Y == outline.Ly || p.Loc.Y == outline.Uy
		if !onEdge && !outline.ContainsClosed(p.Loc) {
			t.Errorf("port %s at %v not on outline", p.Name, p.Loc)
		}
	}
}

func TestPerimeterPoint(t *testing.T) {
	r := geom.R(0, 0, 10, 6)
	cases := []struct {
		dist float64
		want geom.Point
	}{
		{0, geom.Pt(0, 0)},
		{5, geom.Pt(5, 0)},
		{10, geom.Pt(10, 0)},
		{13, geom.Pt(10, 3)},
		{16, geom.Pt(10, 6)},
		{21, geom.Pt(5, 6)},
		{26, geom.Pt(0, 6)},
		{29, geom.Pt(0, 3)},
		{32, geom.Pt(0, 0)}, // wraps
		{-3, geom.Pt(0, 3)}, // negative wraps backwards
	}
	for _, c := range cases {
		if got := perimeterPoint(r, c.dist); got != c.want {
			t.Errorf("perimeterPoint(%v) = %v, want %v", c.dist, got, c.want)
		}
	}
}
