package check

import (
	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// ENG rules: coherence of the engines layered on the netlist. PR 2's
// incremental timer is bit-exact only while the change journal covers
// every object and the retained timing graph levelizes consistently with
// the netlist; these rules assert both, plus revision monotonicity across
// stage boundaries (Session).

func engJournal(c *checker) {
	d := c.in.Design
	c.checked(len(d.Instances) + len(d.Nets))
	insts, nets := d.JournalCoverage()
	if insts != len(d.Instances) {
		c.fail("design", "journal covers %d of %d instances", insts, len(d.Instances))
	}
	if nets != len(d.Nets) {
		c.fail("design", "journal covers %d of %d nets", nets, len(d.Nets))
	}
	for i, inst := range d.Instances {
		if inst.ID != i {
			c.fail(inst.Name, "instance ID %d does not match its index %d", inst.ID, i)
			break // one cascade is one finding
		}
	}
	for i, n := range d.Nets {
		if n.ID != i {
			c.fail(n.Name, "net ID %d does not match its index %d", n.ID, i)
			break
		}
	}
}

// engLevelization cross-checks the STA engine's levelization against an
// independent replay of its contract. The engine's order is not a strict
// topological sort: its levelizer counts only combinational-to-
// combinational arcs as fanin but releases sinks on every pop, so a cell
// also fed by a register can surface before one of its combinational
// drivers — the "late arcs" the incremental timer's sweeps explicitly
// tolerate. What IS the bit-exactness contract is that the order (1)
// exists exactly when the replay levelizes completely, (2) covers every
// instance exactly once with index-aligned IDs, and (3) matches the
// replay element for element — any divergence means the engine and the
// netlist disagree about the design's structure.
func engLevelization(c *checker) {
	d := c.in.Design
	c.checked(len(d.Instances))
	for i, inst := range d.Instances {
		if inst.Master == nil {
			c.fail("design", "levelization skipped: instance %s has no master", inst.Name)
			return
		}
		if inst.ID != i {
			// ENG-001 owns the finding; an ID-incoherent design cannot be
			// levelized (the engine indexes its arrays by instance ID).
			return
		}
	}
	want, complete := replayLevelization(d)
	order, err := sta.TopoOrder(d)
	if err != nil {
		if complete {
			c.fail("design", "engine reports a combinational cycle the levelization replay does not: %v", err)
		} else {
			c.fail("design", "timing graph not levelizable: %v", err)
		}
		return
	}
	if !complete {
		c.fail("design", "engine levelized a design the replay finds cyclic (%d of %d instances)",
			len(want), len(d.Instances))
		return
	}
	if len(order) != len(d.Instances) {
		c.fail("design", "levelization covers %d of %d instances", len(order), len(d.Instances))
		return
	}
	seen := make([]bool, len(d.Instances))
	for i, inst := range order {
		if inst.ID < 0 || inst.ID >= len(seen) || seen[inst.ID] {
			c.fail(inst.Name, "instance appears twice (or with a foreign ID) in the topological order")
			return
		}
		seen[inst.ID] = true
		if inst != want[i] {
			c.fail(inst.Name, "levelization diverges from the replay at position %d (%s vs %s)",
				i, inst.Name, want[i].Name)
			return
		}
	}
}

// replayLevelization independently re-runs the timing engine's published
// levelization contract (sta.TopoOrder): sources are sequential cells and
// macros, fanin counts combinational DirIn arcs from non-source drivers,
// and every pop — source or not — releases its non-source, non-clock
// sinks in FIFO order. complete is false when a combinational cycle
// leaves instances unlevelized.
func replayLevelization(d *netlist.Design) (order []*netlist.Instance, complete bool) {
	n := len(d.Instances)
	isSource := func(inst *netlist.Instance) bool {
		f := inst.Master.Function
		return f.IsSequential() || f.IsMacro()
	}
	remaining := make([]int, n)
	for _, inst := range d.Instances {
		if inst.ID >= n || isSource(inst) {
			continue
		}
		for i, p := range inst.Master.Pins {
			if p.Dir != cell.DirIn {
				continue
			}
			nn := d.NetAt(inst, i)
			if nn == nil || !nn.Driver.Valid() || nn.Driver.Inst.Master == nil {
				continue
			}
			if !isSource(nn.Driver.Inst) {
				remaining[inst.ID]++
			}
		}
	}
	queue := make([]*netlist.Instance, 0, n)
	for _, inst := range d.Instances {
		if inst.ID < n && (isSource(inst) || remaining[inst.ID] == 0) {
			queue = append(queue, inst)
		}
	}
	order = make([]*netlist.Instance, 0, n)
	for len(queue) > 0 {
		inst := queue[0]
		queue = queue[1:]
		order = append(order, inst)
		out := d.OutputNet(inst)
		if out == nil {
			continue
		}
		for _, s := range out.Sinks {
			if !s.Valid() || s.Inst.ID >= n || isSource(s.Inst) || s.Spec().Dir == cell.DirClk {
				continue
			}
			remaining[s.Inst.ID]--
			if remaining[s.Inst.ID] == 0 {
				queue = append(queue, s.Inst)
			}
		}
	}
	return order, len(order) == n
}

// engMonotonic fires only inside a Session (stage-boundary runs): the
// journal's revisions and the design's object counts must never move
// backwards between boundaries — a decrease means some engine holds a
// stale view of the design.
func engMonotonic(c *checker) {
	s := c.in.session
	if s == nil || !s.seen {
		return
	}
	d := c.in.Design
	c.checked(3)
	if rev := d.TopoRev(); rev < s.prevTopo {
		c.fail("design", "topology revision moved backwards: %d after %d (stage %s)", rev, s.prevTopo, s.prevStage)
	}
	if n := len(d.Instances); n < s.prevInsts {
		c.fail("design", "instance count shrank: %d after %d (stage %s)", n, s.prevInsts, s.prevStage)
	}
	if n := len(d.Nets); n < s.prevNets {
		c.fail("design", "net count shrank: %d after %d (stage %s)", n, s.prevNets, s.prevStage)
	}
}

// Session runs the checker at successive stage boundaries of one flow,
// carrying the revision state the monotonicity rule compares against.
// The zero value is ready to use; Session is not safe for concurrent use
// (one flow = one session).
type Session struct {
	seen      bool
	prevStage string
	prevTopo  uint64
	prevInsts int
	prevNets  int

	reports []*Report
}

// Run checks one stage boundary: the selected classes run over the input
// plus the session's monotonicity context, and the session state advances
// to the new boundary.
func (s *Session) Run(stage string, in Input, classes Class) *Report {
	in.session = s
	rep := Run(in, classes)
	rep.Stage = stage
	if d := in.Design; d != nil {
		s.prevStage = stage
		s.prevTopo = d.TopoRev()
		s.prevInsts = len(d.Instances)
		s.prevNets = len(d.Nets)
		s.seen = true
	}
	s.reports = append(s.reports, rep)
	return rep
}

// Reports returns every boundary report of the session, in run order.
func (s *Session) Reports() []*Report { return s.reports }
