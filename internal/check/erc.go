package check

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// ERC rules: the electrical-rule checks a commercial sign-off run
// (Innovus check_design / Tempus check_timing) performs on the netlist
// before trusting any downstream number.

func ercDanglingNet(c *checker) {
	d := c.in.Design
	c.checked(len(d.Nets))
	for _, n := range d.Nets {
		if n.Degree() == 0 {
			c.fail(n.Name, "net has no driver, sinks, or ports")
		}
	}
}

func ercUndrivenNet(c *checker) {
	d := c.in.Design
	c.checked(len(d.Nets))
	for _, n := range d.Nets {
		if n.Degree() > 0 && !n.HasDriver() {
			c.fail(n.Name, "net has %d sink(s) but no driver", len(n.Sinks)+len(n.SinkPorts))
		}
	}
}

func ercMultiDrivenNet(c *checker) {
	d := c.in.Design
	c.checked(len(d.Nets))
	for _, n := range d.Nets {
		if n.Driver.Valid() && n.DriverPort != nil {
			c.fail(n.Name, "net driven by both pin %s/%s and port %s",
				n.Driver.Inst.Name, n.Driver.Spec().Name, n.DriverPort.Name)
		}
	}
}

func ercFloatingInput(c *checker) {
	d := c.in.Design
	for _, inst := range d.Instances {
		if inst.Master == nil {
			continue // ERC-006's finding
		}
		for i, p := range inst.Master.Pins {
			if p.Dir != cell.DirIn {
				continue
			}
			c.checked(1)
			if d.NetAt(inst, i) == nil {
				c.fail(inst.Name, "input pin %s is unconnected", p.Name)
			}
		}
	}
}

func ercUnconnectedClock(c *checker) {
	if !c.in.ClockBuilt {
		return // pre-CTS states legitimately float clock pins
	}
	d := c.in.Design
	for _, inst := range d.Instances {
		if inst.Master == nil {
			continue
		}
		for i, p := range inst.Master.Pins {
			if p.Dir != cell.DirClk {
				continue
			}
			c.checked(1)
			if d.NetAt(inst, i) == nil {
				c.fail(inst.Name, "clock pin %s unconnected after CTS", p.Name)
			}
		}
	}
}

func ercMaster(c *checker) {
	d := c.in.Design
	c.checked(len(d.Instances))
	var tracks []string
	haveLibs := false
	for _, lib := range c.in.Libs {
		if lib != nil {
			haveLibs = true
			tracks = append(tracks, lib.Variant.Track.String())
		}
	}
	for _, inst := range d.Instances {
		m := inst.Master
		if m == nil {
			c.fail(inst.Name, "instance has no cell master")
			continue
		}
		if err := m.Validate(); err != nil {
			c.fail(inst.Name, "invalid master %s: %v", m.Name, err)
			continue
		}
		if haveLibs && !m.Function.IsMacro() {
			known := false
			for _, lib := range c.in.Libs {
				if lib != nil && lib.Variant.Track == m.Track {
					known = true
					break
				}
			}
			if !known {
				c.fail(inst.Name, "master %s track %v outside flow libraries (%v)",
					m.Name, m.Track, tracks)
			}
		}
	}
}

func ercBinding(c *checker) {
	d := c.in.Design
	c.checked(len(d.Nets) + len(d.Instances) + len(d.Ports))
	for _, n := range d.Nets {
		if n.Driver.Valid() && d.NetAt(n.Driver.Inst, n.Driver.Pin) != n {
			c.fail(n.Name, "driver %s/%s does not point back at the net",
				n.Driver.Inst.Name, n.Driver.Spec().Name)
		}
		for _, s := range n.Sinks {
			if !s.Valid() {
				c.fail(n.Name, "invalid sink reference")
				continue
			}
			if s.Spec().Dir == cell.DirOut {
				c.fail(n.Name, "output pin %s/%s listed as sink", s.Inst.Name, s.Spec().Name)
			}
			if d.NetAt(s.Inst, s.Pin) != n {
				c.fail(n.Name, "sink %s/%s does not point back at the net",
					s.Inst.Name, s.Spec().Name)
			}
		}
	}
	for _, inst := range d.Instances {
		if inst.Master == nil {
			continue
		}
		for i, spec := range inst.Master.Pins {
			n := d.NetAt(inst, i)
			if n == nil {
				continue
			}
			ref := netlist.PinRef{Inst: inst, Pin: i}
			if spec.Dir == cell.DirOut {
				if n.Driver != ref {
					c.fail(inst.Name, "output pin %s bound to net %s but not its driver", spec.Name, n.Name)
				}
				continue
			}
			found := false
			for _, s := range n.Sinks {
				if s == ref {
					found = true
					break
				}
			}
			if !found {
				c.fail(inst.Name, "pin %s bound to net %s but missing from its sinks", spec.Name, n.Name)
			}
		}
	}
	for _, p := range d.Ports {
		if p.Net == nil {
			c.fail(p.Name, "port has no net")
		}
	}
}

// ercCombLoop re-derives the STA engine's levelization model (sequential
// cells and macros break paths; every combinational input arc counts) and
// runs Kahn's algorithm: instances left unlevelized sit on or behind a
// combinational loop, which the push-based timer cannot analyze.
func ercCombLoop(c *checker) {
	d := c.in.Design
	c.checked(len(d.Instances))

	isSource := func(inst *netlist.Instance) bool {
		if inst.Master == nil {
			return true // keep the scan total; ERC-006 owns the finding
		}
		f := inst.Master.Function
		return f.IsSequential() || f.IsMacro()
	}

	fanin := make([]int, len(d.Instances))
	for _, inst := range d.Instances {
		if inst.ID >= len(fanin) || isSource(inst) || inst.Master == nil {
			continue
		}
		for i, p := range inst.Master.Pins {
			if p.Dir != cell.DirIn {
				continue
			}
			n := d.NetAt(inst, i)
			if n == nil || !n.Driver.Valid() {
				continue
			}
			if !isSource(n.Driver.Inst) {
				fanin[inst.ID]++
			}
		}
	}

	queue := make([]*netlist.Instance, 0, len(d.Instances))
	for _, inst := range d.Instances {
		if inst.ID < len(fanin) && (isSource(inst) || fanin[inst.ID] == 0) {
			queue = append(queue, inst)
		}
	}
	done := 0
	for len(queue) > 0 {
		inst := queue[0]
		queue = queue[1:]
		done++
		if isSource(inst) {
			// Arcs out of path-breaking cells were never counted as
			// fanin, so a source pop must not release anything — unlike
			// the timing engine's levelizer, whose early releases this
			// independent detector deliberately does not reproduce
			// (ENG-002 owns that contract).
			continue
		}
		out := d.OutputNet(inst)
		if out == nil {
			continue
		}
		for _, s := range out.Sinks {
			if !s.Valid() || s.Spec().Dir != cell.DirIn || isSource(s.Inst) || s.Inst.ID >= len(fanin) {
				continue
			}
			fanin[s.Inst.ID]--
			if fanin[s.Inst.ID] == 0 {
				queue = append(queue, s.Inst)
			}
		}
	}
	if done == len(d.Instances) {
		return
	}
	var examples []string
	for _, inst := range d.Instances {
		if inst.ID < len(fanin) && fanin[inst.ID] > 0 {
			examples = append(examples, inst.Name)
			if len(examples) == 5 {
				break
			}
		}
	}
	c.fail("design", "combinational loop: %d of %d instances not levelizable (e.g. %v)",
		len(d.Instances)-done, len(d.Instances), examples)
}
