package check

import (
	"repro/internal/route"
	"repro/internal/tech"
)

// TDR rules: the 3-D-specific consistency checks. The paper's Tables
// VI–VII report MIV counts straight from the router's accounting; these
// rules pin that accounting to the netlist's actual cut state so a stale
// count can never reach a table.

func tdrTierRange(c *checker) {
	if c.in.Tiers < 1 {
		return
	}
	d := c.in.Design
	c.checked(len(d.Instances))
	for _, inst := range d.Instances {
		switch {
		case c.in.Tiers == 1 && inst.Tier != tech.TierBottom:
			c.fail(inst.Name, "tier %v in a single-die implementation", inst.Tier)
		case inst.Tier != tech.TierBottom && inst.Tier != tech.TierTop:
			c.fail(inst.Name, "tier %d outside the two-die stack", int(inst.Tier))
		}
	}
}

func tdrMIVAccounting(c *checker) {
	if c.in.Tiers != 2 {
		return
	}
	d := c.in.Design
	r := c.in.Router
	if r == nil {
		r = route.New()
	}
	c.checked(len(d.Nets))
	total := 0
	for _, n := range d.Nets {
		mivs := r.CountMIVs(n)
		total += mivs
		if crosses := n.CrossesTiers(); crosses != (mivs > 0) {
			c.fail(n.Name, "MIV count %d inconsistent with tier crossing %v", mivs, crosses)
		}
	}
	if c.in.ReportedMIVs != nil {
		c.checked(1)
		if *c.in.ReportedMIVs != total {
			c.fail("design", "PPAC reports %d MIVs but the netlist needs %d", *c.in.ReportedMIVs, total)
		}
	}
}

func tdrTierLibs(c *checker) {
	if !c.in.TierLibs || c.in.Tiers != 2 || c.in.Libs[0] == nil || c.in.Libs[1] == nil {
		return
	}
	d := c.in.Design
	for _, inst := range d.Instances {
		if inst.Master == nil || inst.Master.Function.IsMacro() {
			continue
		}
		c.checked(1)
		t := tierOf(inst)
		want := c.in.Libs[t].Variant.Track
		if inst.Master.Track != want {
			c.fail(inst.Name, "master %s is %v but the %s tier is %v",
				inst.Master.Name, inst.Master.Track, t, want)
		}
	}
}
