package check

// catalog is the rule registry, in ID order. IDs are stable and
// documented in DESIGN.md §6.4: tests, CI gates, and downstream tooling
// key on them, so a rule may be retired but its ID never reused.
var catalog = []Rule{
	{
		ID: "ERC-001", Title: "dangling net", Severity: Warning, Class: ClassERC,
		Doc: "A net with no driver, sinks, or ports is editing debris; it distorts net statistics and wastes router work.",
		run: ercDanglingNet,
	},
	{
		ID: "ERC-002", Title: "undriven net", Severity: Error, Class: ClassERC,
		Doc: "A net with sinks but no driver makes every downstream timing arc meaningless (Tempus check_timing's no_driving_cell).",
		run: ercUndrivenNet,
	},
	{
		ID: "ERC-003", Title: "multi-driven net", Severity: Error, Class: ClassERC,
		Doc: "A net driven by both an instance pin and an input port is electrical contention; one driver per net is the netlist invariant every engine assumes.",
		run: ercMultiDrivenNet,
	},
	{
		ID: "ERC-004", Title: "floating input pin", Severity: Warning, Class: ClassERC,
		Doc: "An unconnected signal input propagates unknowns through the cone below it; the generators and ECO edits must never leave one behind.",
		run: ercFloatingInput,
	},
	{
		ID: "ERC-005", Title: "unconnected clock pin", Severity: Error, Class: ClassERC,
		Doc: "After CTS every sequential clock pin must be on the tree; a floating one silently drops the cell from clock power and skew accounting (Table VIII).",
		run: ercUnconnectedClock,
	},
	{
		ID: "ERC-006", Title: "unknown or invalid master", Severity: Error, Class: ClassERC,
		Doc: "Every instance needs a structurally valid master from the flow's libraries; a foreign-track master breaks the per-tier NLDM lookup of the hetero flow.",
		run: ercMaster,
	},
	{
		ID: "ERC-007", Title: "pin-binding integrity", Severity: Error, Class: ClassERC,
		Doc: "Instance-side pin bindings and net-side driver/sink lists must mirror each other exactly, or incremental edits corrupt connectivity unnoticed.",
		run: ercBinding,
	},
	{
		ID: "ERC-008", Title: "combinational loop", Severity: Error, Class: ClassERC,
		Doc: "The push-based STA engine levelizes the combinational graph; a loop makes static timing undefined (check_timing's generated_clocks/loops).",
		run: ercCombLoop,
	},

	{
		ID: "DRC-001", Title: "cell overlap", Severity: Error, Class: ClassDRC,
		Doc: "Two standard cells sharing row area is an illegal layout; overlapping cells also double-count utilization and distort RC estimates.",
		run: drcOverlap,
	},
	{
		ID: "DRC-002", Title: "off-row placement", Severity: Error, Class: ClassDRC,
		Doc: "Cells must sit on their tier's row grid — 9-track rows on top, 12-track on bottom for hetero designs (Fig. 3c's visible row mismatch).",
		run: drcOffRow,
	},
	{
		ID: "DRC-003", Title: "out-of-bounds placement", Severity: Error, Class: ClassDRC,
		Doc: "Standard cells must stay inside the core region and macros inside the left-edge macro block column; an escaped cell breaks the footprint/area accounting of Table VI.",
		run: drcBounds,
	},
	{
		ID: "DRC-004", Title: "utilization sanity", Severity: Error, Class: ClassDRC,
		Doc: "Per-tier cell area beyond the core's capacity cannot legalize; the repair loops' density guards must keep every die under 100 %.",
		run: drcUtilization,
	},

	{
		ID: "TDR-001", Title: "tier assignment", Severity: Error, Class: ClassTDR,
		Doc: "Every cell's tier must exist in the implementation: only the bottom die for 2-D, the two-die stack for M3D/hetero.",
		run: tdrTierRange,
	},
	{
		ID: "TDR-002", Title: "MIV accounting", Severity: Error, Class: ClassTDR,
		Doc: "The router's MIV count must agree with each net's actual tier crossing, and the signoff PPAC MIV total with the final netlist — the Table VI/VII MIV rows.",
		run: tdrMIVAccounting,
	},
	{
		ID: "TDR-003", Title: "tier/library compatibility", Severity: Error, Class: ClassTDR,
		Doc: "After the hetero retarget each die hosts exactly one library (12-track bottom, 9-track top); a mixed-track die voids the per-tier timing and leakage models (Tables II/III).",
		run: tdrTierLibs,
	},

	{
		ID: "ENG-001", Title: "journal coverage", Severity: Error, Class: ClassENG,
		Doc: "The change journal must cover every instance and net with index-aligned IDs, or the incremental timer and RC cache silently miss invalidations.",
		run: engJournal,
	},
	{
		ID: "ENG-002", Title: "levelization consistency", Severity: Error, Class: ClassENG,
		Doc: "The STA engine's topological order must exist, cover the netlist exactly, and respect every combinational arc — the bit-exactness premise of the incremental timer.",
		run: engLevelization,
	},
	{
		ID: "ENG-003", Title: "revision monotonicity", Severity: Error, Class: ClassENG,
		Doc: "Across stage boundaries the topology revision and object counts only grow; a decrease means an engine is reading a stale design view.",
		run: engMonotonic,
	},
}
