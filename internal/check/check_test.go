package check

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var (
	lib12 = cell.NewLibrary(tech.Variant12T())
	lib9  = cell.NewLibrary(tech.Variant9T())
)

// chain builds a clean in → FF → inv×depth → FF → out design with every
// cell legally placed on the 12-track row grid of core.
func chain(t *testing.T, depth int) (*netlist.Design, Input) {
	t.Helper()
	d := netlist.New("chain")
	clk, _ := d.AddNet("clk")
	clk.IsClock = true
	if _, err := d.AddPort("clk", cell.DirClk, clk); err != nil {
		t.Fatal(err)
	}
	in, _ := d.AddNet("in")
	if _, err := d.AddPort("in", cell.DirIn, in); err != nil {
		t.Fatal(err)
	}
	connect := func(i *netlist.Instance, pin string, n *netlist.Net) {
		t.Helper()
		if err := d.Connect(i, pin, n); err != nil {
			t.Fatal(err)
		}
	}
	h := lib12.Variant.CellHeight
	ff0, _ := d.AddInstance("ff0", lib12.Smallest(cell.FuncDFF))
	ff0.InitLoc(geom.Pt(2, h/2))
	connect(ff0, "D", in)
	connect(ff0, "CK", clk)
	cur, _ := d.AddNet("q0")
	connect(ff0, "Q", cur)
	for i := 0; i < depth; i++ {
		inv, _ := d.AddInstance("inv"+string(rune('a'+i)), lib12.Smallest(cell.FuncInv))
		inv.InitLoc(geom.Pt(float64(i+2)*3, h/2))
		connect(inv, "A", cur)
		nxt, _ := d.AddNet("n" + string(rune('a'+i)))
		connect(inv, "Y", nxt)
		cur = nxt
	}
	ff1, _ := d.AddInstance("ff1", lib12.Smallest(cell.FuncDFF))
	ff1.InitLoc(geom.Pt(float64(depth+2)*3, h/2))
	connect(ff1, "D", cur)
	connect(ff1, "CK", clk)
	q1, _ := d.AddNet("q1")
	connect(ff1, "Q", q1)
	if _, err := d.AddPort("out", cell.DirOut, q1); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	outline := geom.R(0, 0, float64(depth+4)*3, 4*h)
	return d, Input{
		Design:        d,
		Tiers:         1,
		HaveFloorplan: true,
		Core:          outline,
		Outline:       outline,
		RowHeights:    [2]float64{h, 0},
		Libs:          [2]*cell.Library{lib12, nil},
	}
}

// violations of one rule ID in the report.
func byRule(rep *Report, id string) []Violation {
	var out []Violation
	for _, v := range rep.Violations {
		if v.Rule == id {
			out = append(out, v)
		}
	}
	return out
}

func ruleStat(t *testing.T, rep *Report, id string) RuleStat {
	t.Helper()
	for _, s := range rep.Stats {
		if s.ID == id {
			return s
		}
	}
	t.Fatalf("rule %s missing from report stats", id)
	return RuleStat{}
}

// assertFires asserts that exactly the given rule fired (at least once)
// and no other rule produced findings.
func assertFires(t *testing.T, rep *Report, id string) Violation {
	t.Helper()
	vs := byRule(rep, id)
	if len(vs) == 0 {
		t.Fatalf("rule %s did not fire; report: %v", id, rep.Violations)
	}
	for _, v := range rep.Violations {
		if v.Rule != id {
			t.Fatalf("unexpected extra finding %v", v)
		}
	}
	if st := ruleStat(t, rep, id); st.Violations != len(vs) {
		t.Fatalf("rule %s stat count %d != %d findings", id, st.Violations, len(vs))
	}
	return vs[0]
}

func TestCleanDesignAllRules(t *testing.T) {
	_, in := chain(t, 4)
	rep := Run(in, ClassAll)
	if n := rep.Count(Info); n != 0 {
		t.Fatalf("clean design has %d findings: %v", n, rep.Violations)
	}
	if rep.Checked() == 0 {
		t.Fatal("no objects checked")
	}
	if err := rep.Err(Warning); err != nil {
		t.Fatalf("Err on clean report: %v", err)
	}
}

func TestERC001DanglingNet(t *testing.T) {
	d, in := chain(t, 2)
	if _, err := d.AddNet("orphan"); err != nil {
		t.Fatal(err)
	}
	v := assertFires(t, Run(in, ClassERC), "ERC-001")
	if v.Obj != "orphan" || v.Severity != Warning {
		t.Fatalf("finding = %+v", v)
	}
}

func TestERC002UndrivenNet(t *testing.T) {
	d, in := chain(t, 2)
	n, _ := d.AddNet("undriven")
	sink, _ := d.AddInstance("load", lib12.Smallest(cell.FuncInv))
	sink.InitLoc(geom.Pt(3, lib12.Variant.CellHeight/2*3)) // second row
	if err := d.Connect(sink, "A", n); err != nil {
		t.Fatal(err)
	}
	// The floating Y output of the load inverter is legal mid-flow; only
	// the undriven input net is the error here.
	rep := Run(in, ClassERC)
	vs := byRule(rep, "ERC-002")
	if len(vs) != 1 || vs[0].Obj != "undriven" || vs[0].Severity != Error {
		t.Fatalf("ERC-002 findings = %v", vs)
	}
}

func TestERC003MultiDrivenNet(t *testing.T) {
	d, in := chain(t, 2)
	// Fabricate contention behind the API's back: the port claims a net
	// that an instance pin already drives.
	n := d.Net("q0")
	n.DriverPort = &netlist.Port{Name: "rogue", Dir: cell.DirIn, Net: n}
	v := assertFires(t, Run(in, ClassERC), "ERC-003")
	if v.Obj != "q0" {
		t.Fatalf("finding = %+v", v)
	}
}

func TestERC004FloatingInput(t *testing.T) {
	d, in := chain(t, 2)
	idle, _ := d.AddInstance("idle", lib12.Smallest(cell.FuncInv))
	idle.InitLoc(geom.Pt(6, lib12.Variant.CellHeight/2*3))
	out, _ := d.AddNet("idle_out")
	if err := d.Connect(idle, "Y", out); err != nil {
		t.Fatal(err)
	}
	sink, _ := d.AddInstance("idle_sink", lib12.Smallest(cell.FuncInv))
	sink.InitLoc(geom.Pt(9, lib12.Variant.CellHeight/2*3))
	if err := d.Connect(sink, "A", out); err != nil {
		t.Fatal(err)
	}
	sout, _ := d.AddNet("idle_sout")
	if err := d.Connect(sink, "Y", sout); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("idle_o", cell.DirOut, sout); err != nil {
		t.Fatal(err)
	}
	rep := Run(in, ClassERC)
	vs := byRule(rep, "ERC-004")
	if len(vs) != 1 || vs[0].Obj != "idle" {
		t.Fatalf("ERC-004 findings = %v (all: %v)", vs, rep.Violations)
	}
}

func TestERC005UnconnectedClock(t *testing.T) {
	d, in := chain(t, 2)
	ff := d.Instance("ff1")
	ck := d.NetOf(ff, "CK")
	if err := d.Disconnect(netlist.PinRef{Inst: ff, Pin: pinIndex(t, ff, "CK")}); err != nil {
		t.Fatal(err)
	}
	_ = ck
	in.ClockBuilt = true
	v := assertFires(t, Run(in, ClassERC), "ERC-005")
	if v.Obj != "ff1" {
		t.Fatalf("finding = %+v", v)
	}
	// Pre-CTS the same state is legal.
	in.ClockBuilt = false
	if vs := byRule(Run(in, ClassERC), "ERC-005"); len(vs) != 0 {
		t.Fatalf("ERC-005 fired pre-CTS: %v", vs)
	}
}

func pinIndex(t *testing.T, inst *netlist.Instance, name string) int {
	t.Helper()
	for i, p := range inst.Master.Pins {
		if p.Name == name {
			return i
		}
	}
	t.Fatalf("no pin %s on %s", name, inst.Name)
	return -1
}

func TestERC006ForeignTrackMaster(t *testing.T) {
	d, in := chain(t, 2)
	// A 9-track master in a flow whose only library is 12-track.
	if err := d.ReplaceMaster(d.Instance("inva"), lib9.Smallest(cell.FuncInv)); err != nil {
		t.Fatal(err)
	}
	v := assertFires(t, Run(in, ClassERC), "ERC-006")
	if v.Obj != "inva" {
		t.Fatalf("finding = %+v", v)
	}
}

func TestERC006InvalidMaster(t *testing.T) {
	d, in := chain(t, 2)
	bad := &cell.Master{Name: "broken"} // zero size, no tables
	if _, err := d.AddInstance("junk", bad); err != nil {
		t.Fatal(err)
	}
	rep := Run(in, ClassERC)
	vs := byRule(rep, "ERC-006")
	if len(vs) != 1 || vs[0].Obj != "junk" {
		t.Fatalf("ERC-006 findings = %v", vs)
	}
}

func TestERC007BindingMismatch(t *testing.T) {
	d, in := chain(t, 2)
	// Drop the net-side sink record while the instance still points at it.
	n := d.Net("q0")
	n.Sinks = nil
	rep := Run(in, ClassERC)
	vs := byRule(rep, "ERC-007")
	if len(vs) == 0 {
		t.Fatalf("ERC-007 did not fire: %v", rep.Violations)
	}
}

func TestERC008CombinationalLoop(t *testing.T) {
	d, in := chain(t, 2)
	a, _ := d.AddInstance("loop_a", lib12.Smallest(cell.FuncInv))
	b, _ := d.AddInstance("loop_b", lib12.Smallest(cell.FuncInv))
	h := lib12.Variant.CellHeight
	a.InitLoc(geom.Pt(3, h/2*3))
	b.InitLoc(geom.Pt(6, h/2*3))
	n1, _ := d.AddNet("loop_n1")
	n2, _ := d.AddNet("loop_n2")
	for _, c := range []struct {
		i   *netlist.Instance
		pin string
		n   *netlist.Net
	}{{a, "Y", n1}, {b, "A", n1}, {b, "Y", n2}, {a, "A", n2}} {
		if err := d.Connect(c.i, c.pin, c.n); err != nil {
			t.Fatal(err)
		}
	}
	v := assertFires(t, Run(in, ClassERC), "ERC-008")
	if !strings.Contains(v.Msg, "loop") {
		t.Fatalf("finding = %+v", v)
	}
}

func TestDRC001Overlap(t *testing.T) {
	d, in := chain(t, 2)
	// Two inverters shoved onto the same spot of one row.
	d.Instance("invb").SetLoc(d.Instance("inva").Loc)
	v := assertFires(t, Run(in, ClassDRC), "DRC-001")
	if v.Obj != "inva" {
		t.Fatalf("finding = %+v", v)
	}
}

func TestDRC002OffRow(t *testing.T) {
	d, in := chain(t, 2)
	inv := d.Instance("inva")
	inv.SetLoc(geom.Pt(inv.Loc.X, inv.Loc.Y+0.31*lib12.Variant.CellHeight))
	v := assertFires(t, Run(in, ClassDRC), "DRC-002")
	if v.Obj != "inva" {
		t.Fatalf("finding = %+v", v)
	}
}

func TestDRC003OutOfCore(t *testing.T) {
	d, in := chain(t, 2)
	inv := d.Instance("inva")
	inv.SetLoc(geom.Pt(in.Core.Ux+5, inv.Loc.Y))
	rep := Run(in, ClassDRC)
	vs := byRule(rep, "DRC-003")
	if len(vs) != 1 || vs[0].Obj != "inva" {
		t.Fatalf("DRC-003 findings = %v (all: %v)", vs, rep.Violations)
	}
}

func TestDRC003MacroOutsideOutline(t *testing.T) {
	d, in := chain(t, 2)
	inv := d.Instance("inva")
	inv.Fixed = true
	inv.SetLoc(geom.Pt(-50, -50))
	v := assertFires(t, Run(in, ClassDRC), "DRC-003")
	if v.Obj != "inva" || !strings.Contains(v.Msg, "column") {
		t.Fatalf("finding = %+v", v)
	}
}

func TestDRC004Overutilization(t *testing.T) {
	d, in := chain(t, 2)
	in.Core = geom.R(0, 0, 0.5, lib12.Variant.CellHeight)
	_ = d
	// The shrunken core also trips bounds/off-row rules; only assert on
	// the utilization finding.
	vs := byRule(Run(in, ClassDRC), "DRC-004")
	if len(vs) != 1 || vs[0].Obj != "bottom" {
		t.Fatalf("DRC-004 findings = %v", vs)
	}
}

func TestTDR001TierRange2D(t *testing.T) {
	d, in := chain(t, 2)
	d.Instance("inva").SetTier(tech.TierTop) // in a Tiers=1 input
	v := assertFires(t, Run(in, ClassTDR), "TDR-001")
	if v.Obj != "inva" {
		t.Fatalf("finding = %+v", v)
	}
}

func TestTDR002MIVAccounting(t *testing.T) {
	d, in := chain(t, 2)
	in.Tiers = 2
	in.Libs = [2]*cell.Library{lib12, lib12}
	in.RowHeights = [2]float64{lib12.Variant.CellHeight, lib12.Variant.CellHeight}
	d.Instance("inva").SetTier(tech.TierTop)
	reported := 0 // stale: the cut nets around inva need MIVs
	in.ReportedMIVs = &reported
	v := assertFires(t, Run(in, ClassTDR), "TDR-002")
	if v.Obj != "design" || !strings.Contains(v.Msg, "PPAC") {
		t.Fatalf("finding = %+v", v)
	}
	// With the true count the rule is clean.
	rep := Run(Input{Design: d, Tiers: 2, Libs: in.Libs}, ClassTDR)
	if vs := byRule(rep, "TDR-002"); len(vs) != 0 {
		t.Fatalf("TDR-002 on consistent design: %v", vs)
	}
}

func TestTDR003TierLibraryMismatch(t *testing.T) {
	d, in := chain(t, 2)
	in.Tiers = 2
	in.TierLibs = true
	in.Libs = [2]*cell.Library{lib12, lib9}
	in.RowHeights = [2]float64{lib12.Variant.CellHeight, lib9.Variant.CellHeight}
	// inva moves to the 9-track top die but keeps its 12-track master.
	d.Instance("inva").SetTier(tech.TierTop)
	rep := Run(in, ClassTDR)
	vs := byRule(rep, "TDR-003")
	if len(vs) != 1 || vs[0].Obj != "inva" {
		t.Fatalf("TDR-003 findings = %v (all: %v)", vs, rep.Violations)
	}
}

func TestENG001JournalCoverage(t *testing.T) {
	d, in := chain(t, 2)
	// Smuggle an instance past AddInstance: the journal never grows.
	d.Instances = append(d.Instances, &netlist.Instance{
		ID: len(d.Instances), Name: "smuggled", Master: lib12.Smallest(cell.FuncInv),
	})
	v := assertFires(t, Run(in, ClassENG), "ENG-001")
	if !strings.Contains(v.Msg, "journal covers") {
		t.Fatalf("finding = %+v", v)
	}
}

func TestENG001IDMismatch(t *testing.T) {
	d, in := chain(t, 2)
	d.Nets[0].ID = 99
	rep := Run(in, ClassENG)
	found := false
	for _, v := range byRule(rep, "ENG-001") {
		if strings.Contains(v.Msg, "does not match its index") {
			found = true
		}
	}
	if !found {
		t.Fatalf("ID-mismatch finding missing: %v", rep.Violations)
	}
	d.Nets[0].ID = 0
}

func TestENG002LevelizationLoop(t *testing.T) {
	d, _ := chain(t, 2)
	a, _ := d.AddInstance("la", lib12.Smallest(cell.FuncInv))
	b, _ := d.AddInstance("lb", lib12.Smallest(cell.FuncInv))
	n1, _ := d.AddNet("ln1")
	n2, _ := d.AddNet("ln2")
	for _, c := range []struct {
		i   *netlist.Instance
		pin string
		n   *netlist.Net
	}{{a, "Y", n1}, {b, "A", n1}, {b, "Y", n2}, {a, "A", n2}} {
		if err := d.Connect(c.i, c.pin, c.n); err != nil {
			t.Fatal(err)
		}
	}
	v := assertFires(t, Run(Input{Design: d}, ClassENG), "ENG-002")
	if v.Obj != "design" {
		t.Fatalf("finding = %+v", v)
	}
}

func TestENG003RevisionMonotonicity(t *testing.T) {
	big, inBig := chain(t, 6)
	var s Session
	if rep := s.Run("legalize", inBig, ClassENG); rep.Count(Info) != 0 {
		t.Fatalf("first boundary dirty: %v", rep.Violations)
	}
	_ = big
	// A smaller design behind the same session: counts and revision went
	// backwards — the "engine reads a stale view" hazard.
	small, inSmall := chain(t, 1)
	_ = small
	rep := s.Run("cts", inSmall, ClassENG)
	vs := byRule(rep, "ENG-003")
	if len(vs) == 0 {
		t.Fatalf("ENG-003 did not fire: %v", rep.Violations)
	}
	if rep.Stage != "cts" || len(s.Reports()) != 2 {
		t.Fatalf("session bookkeeping: stage=%q reports=%d", rep.Stage, len(s.Reports()))
	}
}

func TestSessionMonotonicCleanAcrossGrowth(t *testing.T) {
	d, in := chain(t, 3)
	var s Session
	if rep := s.Run("legalize", in, ClassAll); rep.Count(Info) != 0 {
		t.Fatalf("boundary 1: %v", rep.Violations)
	}
	// Legal growth: an ECO buffer between the boundaries.
	h := lib12.Variant.CellHeight
	nb, _, err := d.InsertBuffer(d.Net("q0"), []netlist.PinRef{d.Net("q0").Sinks[0]},
		lib12.Smallest(cell.FuncBuf), "eco_buf")
	if err != nil {
		t.Fatal(err)
	}
	nb.SetLoc(geom.Pt(14, h/2*3))
	if rep := s.Run("signoff", in, ClassAll); rep.Count(Info) != 0 {
		t.Fatalf("boundary 2: %v", rep.Violations)
	}
}

func TestViolationCapKeepsFullCounts(t *testing.T) {
	d, in := chain(t, 2)
	for i := 0; i < MaxPerRule+15; i++ {
		if _, err := d.AddNet("orphan" + string(rune('a'+i%26)) + string(rune('a'+i/26))); err != nil {
			t.Fatal(err)
		}
	}
	rep := Run(in, ClassERC)
	st := ruleStat(t, rep, "ERC-001")
	if st.Violations != MaxPerRule+15 {
		t.Fatalf("stat count = %d, want %d", st.Violations, MaxPerRule+15)
	}
	if got := len(byRule(rep, "ERC-001")); got != MaxPerRule {
		t.Fatalf("retained findings = %d, want cap %d", got, MaxPerRule)
	}
	if rep.Count(Warning) != MaxPerRule+15 {
		t.Fatalf("Count(Warning) = %d", rep.Count(Warning))
	}
	if err := rep.Err(Warning); err == nil || !strings.Contains(err.Error(), "total") {
		t.Fatalf("Err = %v", err)
	}
	if err := rep.Err(Error); err != nil {
		t.Fatalf("Err(Error) should be clean for warnings: %v", err)
	}
}

func TestCatalogSanity(t *testing.T) {
	rules := Rules()
	if len(rules) == 0 {
		t.Fatal("empty catalog")
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if r.ID == "" || r.Title == "" || r.Doc == "" {
			t.Errorf("rule %+v incomplete", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Class != ClassERC && r.Class != ClassDRC && r.Class != ClassTDR && r.Class != ClassENG {
			t.Errorf("rule %s has composite class %v", r.ID, r.Class)
		}
	}
	// Class selection: ERC-only run must not include DRC stats.
	_, in := chain(t, 1)
	rep := Run(in, ClassERC)
	for _, s := range rep.Stats {
		if !strings.HasPrefix(s.ID, "ERC-") {
			t.Errorf("ClassERC run contains %s", s.ID)
		}
	}
}

func TestSeverityAndClassStrings(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity strings")
	}
	if ClassAll.String() != "ERC|DRC|TDR|ENG" || Class(0).String() != "none" {
		t.Errorf("class strings: %q %q", ClassAll, Class(0))
	}
	v := Violation{Rule: "ERC-001", Severity: Warning, Obj: "n1", Msg: "dangling"}
	if v.String() != "ERC-001 [warning] n1: dangling" {
		t.Errorf("violation string = %q", v)
	}
}

func TestRunNilDesign(t *testing.T) {
	rep := Run(Input{}, ClassAll)
	if rep.Count(Info) != 0 || rep.Checked() != 0 {
		t.Fatalf("nil-design report not empty: %+v", rep)
	}
}
