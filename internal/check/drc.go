package check

import (
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// DRC rules: the placement legality checks a commercial engine
// (check_place / verify_drc) runs after legalization. They mirror the
// legalizer's own geometry — row y = Core.Ly + (row+0.5)·rowHeight per
// tier — so a clean legalization passes bit-exactly. All DRC rules need a
// floorplan; without one they record zero objects checked.
//
// Macros are excluded: the floorplanner parks them in a dedicated block
// column outside the standard-cell core (and may reshape them to fit),
// so row/overlap/core-bounds semantics do not apply to them. DRC-003
// still sanity-checks their centers against the macro block column.

const geomEps = 1e-6

// movableCells returns the standard cells the placement rules govern.
func movableCells(d *netlist.Design) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Fixed || inst.Master == nil || inst.Master.Function.IsMacro() {
			continue
		}
		out = append(out, inst)
	}
	return out
}

// tierOf clamps an instance's tier to a valid row-height index (TDR-001
// owns out-of-range findings).
func tierOf(inst *netlist.Instance) tech.Tier {
	if inst.Tier == tech.TierTop {
		return tech.TierTop
	}
	return tech.TierBottom
}

func drcOverlap(c *checker) {
	if !c.in.HaveFloorplan {
		return
	}
	cells := movableCells(c.in.Design)
	c.checked(len(cells))
	type rowKey struct {
		tier tech.Tier
		y    int64
	}
	rows := make(map[rowKey][]*netlist.Instance)
	for _, inst := range cells {
		k := rowKey{tierOf(inst), int64(math.Round(inst.Loc.Y * 1e6))}
		rows[k] = append(rows[k], inst)
	}
	keys := make([]rowKey, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tier != keys[j].tier {
			return keys[i].tier < keys[j].tier
		}
		return keys[i].y < keys[j].y
	})
	for _, k := range keys {
		row := rows[k]
		sort.Slice(row, func(i, j int) bool {
			if row[i].Loc.X != row[j].Loc.X {
				return row[i].Loc.X < row[j].Loc.X
			}
			return row[i].ID < row[j].ID
		})
		for i := 1; i < len(row); i++ {
			a, b := row[i-1], row[i]
			if a.Loc.X+a.Master.Width/2 > b.Loc.X-b.Master.Width/2+geomEps {
				c.fail(a.Name, "overlaps %s in row y=%.3f on %s tier", b.Name, a.Loc.Y, k.tier)
			}
		}
	}
}

func drcOffRow(c *checker) {
	if !c.in.HaveFloorplan {
		return
	}
	core := c.in.Core
	for _, inst := range movableCells(c.in.Design) {
		t := tierOf(inst)
		h := c.in.RowHeights[t]
		if h <= 0 {
			h = c.in.RowHeights[0]
		}
		if h <= 0 {
			continue
		}
		c.checked(1)
		nRows := int(core.H() / h)
		k := math.Round((inst.Loc.Y-core.Ly)/h - 0.5)
		if k < 0 || (nRows > 0 && k > float64(nRows-1)) {
			c.fail(inst.Name, "y=%.4f outside the %d-row grid of the %s tier", inst.Loc.Y, nRows, t)
			continue
		}
		want := core.Ly + (k+0.5)*h
		if math.Abs(inst.Loc.Y-want) > geomEps {
			c.fail(inst.Name, "y=%.6f off the %s-tier row grid (nearest row center %.6f)", inst.Loc.Y, t, want)
		}
	}
}

func drcBounds(c *checker) {
	if !c.in.HaveFloorplan {
		return
	}
	d := c.in.Design
	core, outline := c.in.Core, c.in.Outline
	for _, inst := range d.Instances {
		if inst.Master == nil {
			continue
		}
		c.checked(1)
		if inst.Fixed || inst.Master.Function.IsMacro() {
			// The floorplanner stacks macros in a left-edge block column
			// and treats their aspect as flexible — area, not extent, is
			// what the cost model reads — so the geometric invariant is
			// "in the column, clear of the standard-cell core": center x
			// inside [outline left, core left] when a column exists
			// (inside the outline width otherwise), and y above the die
			// bottom. The column may legitimately outgrow the nominal die
			// height.
			hi := outline.Ux
			if core.Lx > outline.Lx+geomEps {
				hi = core.Lx
			}
			if inst.Loc.X < outline.Lx-geomEps || inst.Loc.X > hi+geomEps ||
				inst.Loc.Y < outline.Ly-geomEps {
				c.fail(inst.Name, "macro center %v outside the macro block column [%.3f,%.3f) of outline %v",
					inst.Loc, outline.Lx, hi, outline)
			}
			continue
		}
		half := inst.Master.Width / 2
		if inst.Loc.X-half < core.Lx-geomEps || inst.Loc.X+half > core.Ux+geomEps ||
			inst.Loc.Y < core.Ly-geomEps || inst.Loc.Y > core.Uy+geomEps {
			c.fail(inst.Name, "cell at %v (width %.3f) outside core %v", inst.Loc, inst.Master.Width, core)
		}
	}
}

func drcUtilization(c *checker) {
	if !c.in.HaveFloorplan || c.in.Tiers < 1 {
		return
	}
	coreArea := c.in.Core.Area()
	if coreArea <= 0 {
		c.checked(1)
		c.fail("design", "core region %v has no area", c.in.Core)
		return
	}
	var area [2]float64
	for _, inst := range movableCells(c.in.Design) {
		area[tierOf(inst)] += inst.Master.Area()
	}
	for t := 0; t < c.in.Tiers; t++ {
		c.checked(1)
		util := area[t] / coreArea
		if util > 1+1e-9 {
			c.fail(tech.Tier(t).String(), "utilization %.1f%% exceeds core capacity", util*100)
		}
	}
}
