package check

import (
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// FuzzJournalCoherence drives a design through random sequences of
// journaled mutations (SetLoc/SetTier/InsertBuffer/ReplaceMaster) across
// Session boundaries and asserts the engine-coherence rules stay green:
// the journal keeps covering every object, the levelization replay keeps
// matching, and revisions never move backwards. Any red ENG finding means
// a journaled API broke its own contract.
func FuzzJournalCoherence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x41, 0x13, 0x7f})
	f.Add([]byte{0x22, 0x31, 0x02, 0x13, 0x24, 0x35, 0x06, 0x17})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		d, _ := chain(t, 6)
		buf := lib12.Smallest(cell.FuncBuf)
		var session Session
		in := func() Input {
			return Input{Design: d, Tiers: 2, Libs: [2]*cell.Library{lib12, nil}}
		}
		bufN := 0
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			insts := d.Instances
			inst := insts[int(arg)%len(insts)]
			switch op % 4 {
			case 0:
				inst.SetLoc(geom.Pt(float64(arg)*0.3, float64(arg)*0.2))
			case 1:
				inst.SetTier(tech.Tier(arg % 2))
			case 2:
				nets := d.Nets
				n := nets[int(arg)%len(nets)]
				if len(n.Sinks) == 0 {
					continue
				}
				bufN++
				if _, _, err := d.InsertBuffer(n, n.Sinks[:1], buf, fmt.Sprintf("fz_buf%d", bufN)); err != nil {
					t.Fatalf("InsertBuffer: %v", err)
				}
			case 3:
				if inst.Master.Function.IsSequential() || inst.Master.Function.IsMacro() {
					continue
				}
				if err := d.ReplaceMaster(inst, inst.Master); err != nil {
					t.Fatalf("ReplaceMaster: %v", err)
				}
			}
			// Every fourth mutation crosses a stage boundary.
			if i%8 == 6 {
				assertGreen(t, session.Run("fuzz", in(), ClassENG), ops, i)
			}
		}
		assertGreen(t, session.Run("fuzz-final", in(), ClassENG|ClassERC), ops, len(ops))
	})
}

func assertGreen(t *testing.T, rep *Report, ops []byte, at int) {
	t.Helper()
	if n := rep.Count(Info); n != 0 {
		t.Fatalf("ops %x (at %d): %d finding(s): %v", ops, at, n, rep.Violations)
	}
}

// FuzzCheckNetlist corrupts a design through raw structural edits — the
// exact states the checker exists to diagnose — and asserts every rule
// class runs to completion without panicking, whatever it finds.
func FuzzCheckNetlist(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x12, 0x23, 0x34, 0x45, 0x56, 0x67})
	f.Add([]byte{0xff, 0x00, 0xee, 0x11, 0xdd, 0x22})
	f.Add([]byte{0x07, 0x70, 0x07, 0x70, 0x07, 0x70})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		d, _ := chain(t, 4)
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			inst := d.Instances[int(arg)%len(d.Instances)]
			n := d.Nets[int(arg)%len(d.Nets)]
			switch op % 8 {
			case 0:
				inst.Master = nil
			case 1:
				inst.ID = int(arg) // foreign or duplicate ID
			case 2:
				n.Sinks = nil
			case 3:
				n.Driver = netlist.PinRef{}
			case 4:
				n.ID = int(arg)
			case 5:
				// Smuggle in an unjournaled instance.
				d.Instances = append(d.Instances, &netlist.Instance{
					ID: len(d.Instances), Name: fmt.Sprintf("fz_raw%d", i),
				})
			case 6:
				n.DriverPort = &netlist.Port{Name: "fz_port", Net: n}
			case 7:
				inst.Loc = geom.Pt(float64(int8(arg))*100, float64(int8(op))*100)
			}
		}
		in := Input{
			Design:        d,
			Tiers:         1 + int(len(ops))%2,
			HaveFloorplan: true,
			Core:          geom.R(0, 0, 30, 4*lib12.Variant.CellHeight),
			Outline:       geom.R(0, 0, 30, 4*lib12.Variant.CellHeight),
			RowHeights:    [2]float64{lib12.Variant.CellHeight, lib12.Variant.CellHeight},
			Libs:          [2]*cell.Library{lib12, nil},
			ClockBuilt:    len(ops)%3 == 0,
			TierLibs:      len(ops)%5 == 0,
		}
		rep := Run(in, ClassAll) // must not panic
		_ = rep.Err(Error)
		_ = rep.Checked()
	})
}
