// Package check is the design-integrity checker: the re-implemented
// stack's stand-in for the commercial sign-off sanity checks the paper's
// flow leans on (Innovus/Tempus ERC, placement DRC, timing-graph
// verification). A multi-driven net, an off-row cell, or a stale MIV
// count would silently corrupt Tables I–VIII; the rule catalog here makes
// every intermediate flow state machine-checkable instead.
//
// Rules are grouped in four classes with stable, documented IDs
// (DESIGN.md §6.4):
//
//   - ERC  — netlist electrical rules: dangling/multi-driven/undriven
//     nets, floating inputs, unknown masters, binding integrity,
//     combinational loops.
//   - DRC  — placement rules: cell overlaps, off-row placement,
//     out-of-core bounds, utilization sanity.
//   - TDR  — 3-D rules: tier-assignment consistency, MIV accounting
//     against cut nets, tier/library compatibility for hetero configs.
//   - ENG  — engine-coherence rules: change-journal coverage, timing
//     graph acyclicity/levelization, revision monotonicity across stage
//     boundaries.
//
// The flow engine runs the checker at stage boundaries (-check=fast|full)
// through a Session; cmd/designlint runs it standalone.
package check

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/route"
)

// Severity ranks a rule's findings.
type Severity uint8

const (
	// Info marks advisory findings that are legal in some flow states
	// (e.g. floating inputs before synthesis cleanup).
	Info Severity = iota
	// Warning marks suspicious-but-survivable states.
	Warning
	// Error marks states that corrupt downstream results; flows escalate
	// these to a stage failure.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// Class is a bitmask selecting which rule groups run.
type Class uint8

const (
	ClassERC Class = 1 << iota
	ClassDRC
	ClassTDR
	ClassENG

	// ClassAll runs every rule group.
	ClassAll = ClassERC | ClassDRC | ClassTDR | ClassENG
)

// String implements fmt.Stringer.
func (c Class) String() string {
	var parts []string
	for _, g := range []struct {
		c Class
		s string
	}{{ClassERC, "ERC"}, {ClassDRC, "DRC"}, {ClassTDR, "TDR"}, {ClassENG, "ENG"}} {
		if c&g.c != 0 {
			parts = append(parts, g.s)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Violation is one rule finding on one design object.
type Violation struct {
	// Rule is the stable rule ID, e.g. "ERC-002".
	Rule string
	// Severity is the owning rule's severity.
	Severity Severity
	// Obj names the violating object (instance, net, tier, or "design").
	Obj string
	// Msg describes the finding.
	Msg string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", v.Rule, v.Severity, v.Obj, v.Msg)
}

// RuleStat is the per-rule outcome of one checker run.
type RuleStat struct {
	ID       string
	Title    string
	Severity Severity
	// Checked counts the objects the rule examined (0 when the rule was
	// inapplicable to the input and skipped).
	Checked int
	// Violations counts every finding, including those beyond the
	// report's per-rule cap.
	Violations int
}

// Report is the outcome of one checker run over one design state.
type Report struct {
	// Design and Stage label the run (Stage is "" for standalone runs).
	Design string
	Stage  string
	// Stats holds one entry per rule that was selected, in catalog order.
	Stats []RuleStat
	// Violations lists the findings, capped at MaxPerRule per rule in
	// catalog order; Stats carries the uncapped counts.
	Violations []Violation
}

// MaxPerRule caps how many violations of one rule a report retains; the
// per-rule stats keep the full counts.
const MaxPerRule = 20

// Count returns the number of findings at or above min severity
// (uncapped, from the per-rule stats).
func (r *Report) Count(min Severity) int {
	n := 0
	for _, s := range r.Stats {
		if s.Severity >= min {
			n += s.Violations
		}
	}
	return n
}

// Checked sums the objects examined across all selected rules.
func (r *Report) Checked() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Checked
	}
	return n
}

// RuleFailure is the structured error a failing check report produces:
// it keeps the rule IDs behind the findings so callers can react to the
// class of failure — the flow's degradation path treats ENG-class
// failures (stale engine views) as recoverable by rebuilding the
// retained engines, where a DRC failure is a genuine flow bug.
type RuleFailure struct {
	// Total counts the findings at or above the triggering severity.
	Total int
	// Rules lists the distinct violated rule IDs in report order.
	Rules []string
	msg   string
}

func (e *RuleFailure) Error() string { return e.msg }

// Classes returns the distinct rule-ID prefixes ("ERC", "DRC", "TDR",
// "ENG") behind the failure, in first-occurrence order.
func (e *RuleFailure) Classes() []string {
	var out []string
	for _, id := range e.Rules {
		cls, _, _ := strings.Cut(id, "-")
		dup := false
		for _, c := range out {
			if c == cls {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, cls)
		}
	}
	return out
}

// OnlyClass reports whether every violated rule belongs to the given
// class prefix.
func (e *RuleFailure) OnlyClass(cls string) bool {
	c := e.Classes()
	return len(c) == 1 && c[0] == cls
}

// Err converts the report into an error listing the first few findings at
// or above min severity; nil when the report is clean at that level. The
// returned error is a *RuleFailure carrying the violated rule IDs.
func (r *Report) Err(min Severity) error {
	total := r.Count(min)
	if total == 0 {
		return nil
	}
	var lines []string
	for _, v := range r.Violations {
		if v.Severity < min {
			continue
		}
		lines = append(lines, v.String())
		if len(lines) == 5 {
			break
		}
	}
	msg := strings.Join(lines, "; ")
	if total > len(lines) {
		msg += fmt.Sprintf("; ... (%d total)", total)
	}
	fail := &RuleFailure{Total: total, msg: fmt.Sprintf("check: %d violation(s): %s", total, msg)}
	for _, s := range r.Stats {
		if s.Severity >= min && s.Violations > 0 {
			fail.Rules = append(fail.Rules, s.ID)
		}
	}
	return fail
}

// Input is everything the checker can examine. Design is required; the
// rest is optional context — rules whose context is missing record zero
// objects checked instead of guessing.
type Input struct {
	Design *netlist.Design
	// Tiers is 1 for a 2-D implementation, 2 for 3-D; 0 when unknown
	// (tier rules skip).
	Tiers int
	// HaveFloorplan gates the placement DRC rules; Core is the
	// standard-cell region and Outline the die.
	HaveFloorplan bool
	Core, Outline geom.Rect
	// RowHeights are the per-tier legalization row heights (µm).
	RowHeights [2]float64
	// Libs are the per-tier libraries ([bottom, top]; top nil for 2-D).
	Libs [2]*cell.Library
	// TierLibs asserts that every cell's master belongs to its tier's
	// library (true after the hetero retarget with the 3-D CTS enabled;
	// false for flows that intentionally mix, like the 2-D-CTS ablation).
	TierLibs bool
	// ClockBuilt marks post-CTS states: sequential clock pins must be
	// connected from here on.
	ClockBuilt bool
	// Router is the MIV model the accounting rule mirrors (nil = the
	// default route.New model).
	Router *route.Router
	// ReportedMIVs, when non-nil, is the signoff PPAC MIV count the
	// accounting rule cross-checks against the design's current state.
	ReportedMIVs *int

	// session is set by Session.Run; the monotonicity rule reads the
	// previous boundary's revision snapshot through it.
	session *Session
}

// Rule describes one catalog entry.
type Rule struct {
	ID       string
	Title    string
	Severity Severity
	Class    Class
	// Doc explains what the rule guards in paper terms.
	Doc string

	run func(*checker)
}

// Rules returns the catalog in ID order (for documentation and
// cmd/designlint -rules).
func Rules() []Rule {
	out := make([]Rule, len(catalog))
	copy(out, catalog)
	return out
}

// checker is one run's working state.
type checker struct {
	in  Input
	rep *Report
	cur *RuleStat
}

// checked counts objects the current rule examined.
func (c *checker) checked(n int) { c.cur.Checked += n }

// fail records one violation of the current rule.
func (c *checker) fail(obj, format string, args ...interface{}) {
	c.cur.Violations++
	if c.cur.Violations > MaxPerRule {
		return
	}
	c.rep.Violations = append(c.rep.Violations, Violation{
		Rule:     c.cur.ID,
		Severity: c.cur.Severity,
		Obj:      obj,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Run executes the selected rule classes over the input and returns the
// report. It never mutates the design.
func Run(in Input, classes Class) *Report {
	rep := &Report{}
	if in.Design != nil {
		rep.Design = in.Design.Name
	}
	c := &checker{in: in, rep: rep}
	for _, r := range catalog {
		if r.Class&classes == 0 {
			continue
		}
		rep.Stats = append(rep.Stats, RuleStat{ID: r.ID, Title: r.Title, Severity: r.Severity})
		c.cur = &rep.Stats[len(rep.Stats)-1]
		if in.Design == nil {
			continue
		}
		r.run(c)
	}
	return rep
}

// sortViolations orders findings by rule ID then object for stable test
// assertions (Run already emits in catalog order; sessions that merge
// reports use this).
func sortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].Rule != vs[j].Rule {
			return vs[i].Rule < vs[j].Rule
		}
		return vs[i].Obj < vs[j].Obj
	})
}
