package check

// SessionState is the pure-data export of a Session's stage-boundary
// context: what the monotonicity rule (ENG-003) compares the next
// boundary against. Saving it with a design snapshot lets a resumed
// flow keep enforcing revision monotonicity across the save/load
// boundary instead of silently restarting the baseline.
type SessionState struct {
	Seen      bool
	PrevStage string
	PrevTopo  uint64
	PrevInsts int
	PrevNets  int
}

// State exports the session's boundary context.
func (s *Session) State() SessionState {
	return SessionState{
		Seen:      s.seen,
		PrevStage: s.prevStage,
		PrevTopo:  s.prevTopo,
		PrevInsts: s.prevInsts,
		PrevNets:  s.prevNets,
	}
}

// Restore overwrites the session with a previously exported state and
// report history — the resume counterpart of State/Reports.
func (s *Session) Restore(st SessionState, reports []*Report) {
	s.seen = st.Seen
	s.prevStage = st.PrevStage
	s.prevTopo = st.PrevTopo
	s.prevInsts = st.PrevInsts
	s.prevNets = st.PrevNets
	s.reports = append([]*Report(nil), reports...)
}
