package core

import (
	"repro/internal/cts"
	"repro/internal/flow"
	"repro/internal/netlist"
)

// plan2D implements the design as a conventional single-die chip in the
// configuration's library — the paper's 2-D baselines — as a pipeline of
// map → synth → place → legalize → cts → timing-repair → power-recovery
// → signoff.
func plan2D(src *netlist.Design, cfg ConfigName, opt Options) (*flowState, []flow.Stage, error) {
	libs, err := libFor(cfg)
	if err != nil {
		return nil, nil, err
	}
	s := &flowState{cfg: cfg, opt: opt, src: src, libs: libs, tiers: 1, areaScale: 1, notes: "2D flow"}
	return s, []flow.Stage{
		{Name: StageMap, Run: s.stageMap},
		{Name: StageSynth, Run: s.stageSynth},
		{Name: StagePlace, Run: s.stagePlace},
		{Name: StageLegalize, Run: s.stageLegalize},
		{Name: StageCTS, Run: s.stageCTS(cts.Mode2D)},
		{Name: StageRepair, Run: s.stageRepair},
		{Name: StagePower, Run: s.stagePower},
		{Name: StageSignoff, Run: s.stageSignoff},
	}, nil
}
