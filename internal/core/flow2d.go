package core

import (
	"repro/internal/cts"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/synth"
)

// run2D implements the design as a conventional single-die chip in the
// configuration's library — the paper's 2-D baselines.
func run2D(src *netlist.Design, cfg ConfigName, opt Options) (*Result, error) {
	libs, err := libFor(cfg)
	if err != nil {
		return nil, err
	}
	lib := libs[0]
	d, err := cloneMapped(src, lib, src.Name)
	if err != nil {
		return nil, err
	}
	if err := synth.Prepare(d, lib, synth.DefaultOptions()); err != nil {
		return nil, err
	}
	if err := preSizeForClock(d, libs, 1/opt.ClockGHz, 3); err != nil {
		return nil, err
	}

	fp, err := placeWithCongestionRetry(d, opt, 1, 1)
	if err != nil {
		return nil, err
	}
	if _, err := place.LegalizeTiers(d, fp.Core, rowHeights(libs), 1); err != nil {
		return nil, err
	}

	ct, err := cts.Build(d, cts.DefaultOptions(cts.Mode2D, libs))
	if err != nil {
		return nil, err
	}

	router := route.New()
	env := &timingEnv{
		d:       d,
		libs:    libs,
		router:  router,
		period:  1 / opt.ClockGHz,
		latency: ct.LatencyFunc(),
	}
	st, err := repairTiming(env, fp, opt.RepairRounds)
	if err != nil {
		return nil, err
	}
	if st, err = recoverPower(env, fp, st); err != nil {
		return nil, err
	}

	ppac, pw, err := collect(d, cfg, opt, fp, ct, st, router, "2D flow", 0)
	if err != nil {
		return nil, err
	}
	return &Result{PPAC: ppac, Design: d, Libs: libs, Clock: ct, Router: router,
		Timing: st, Power: pw, Outline: fp.Outline}, nil
}
