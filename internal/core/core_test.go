package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib12 = cell.NewLibrary(tech.Variant12T())

// cachedRun memoizes flow results across tests (flows are deterministic).
var (
	runMu    sync.Mutex
	runCache = map[string]*Result{}
)

func genSrc(t *testing.T, name designs.Name, scale float64) *netlist.Design {
	t.Helper()
	d, err := designs.Generate(name, lib12, designs.Params{Scale: scale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func runCfg(t *testing.T, src *netlist.Design, cfg ConfigName, clockGHz float64) *Result {
	t.Helper()
	key := src.Name + "/" + string(cfg)
	runMu.Lock()
	defer runMu.Unlock()
	if r, ok := runCache[key]; ok {
		return r
	}
	r, err := Run(context.Background(), src, cfg, DefaultOptions(clockGHz))
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg, err)
	}
	runCache[key] = r
	return r
}

const testClock = 0.45 // GHz, near the small CPU's 2D-12T f_max

func cpuSrc(t *testing.T) *netlist.Design { return genSrc(t, designs.CPU, 0.04) }

func TestRunAllConfigsValid(t *testing.T) {
	src := cpuSrc(t)
	for _, cfg := range AllConfigs {
		r := runCfg(t, src, cfg, testClock)
		if err := r.Design.Validate(); err != nil {
			t.Errorf("%s: %v", cfg, err)
		}
		p := r.PPAC
		if p.SiAreaMM2 <= 0 || p.PowerMW <= 0 || p.WLm <= 0 || p.DieCostMicroC <= 0 {
			t.Errorf("%s: degenerate PPAC %+v", cfg, p)
		}
		if p.Config != cfg {
			t.Errorf("config label mismatch: %v", p.Config)
		}
		if cfg.Tiers() == 2 && p.MIVs == 0 {
			t.Errorf("%s: no MIVs in a 3-D design", cfg)
		}
		if cfg.Tiers() == 1 && p.MIVs != 0 {
			t.Errorf("%s: MIVs in a 2-D design", cfg)
		}
		if p.Clock == nil || len(p.Clock.Buffers) == 0 {
			t.Errorf("%s: no clock tree", cfg)
		}
	}
}

func TestSourceUntouched(t *testing.T) {
	src := cpuSrc(t)
	before := src.ComputeStats()
	runCfg(t, src, ConfigHetero, testClock)
	if after := src.ComputeStats(); after != before {
		t.Errorf("flow mutated the source netlist: %+v vs %+v", after, before)
	}
}

func TestHeteroTierLibraries(t *testing.T) {
	src := cpuSrc(t)
	r := runCfg(t, src, ConfigHetero, testClock)
	for _, inst := range r.Design.Instances {
		if inst.Master.Function.IsMacro() {
			continue
		}
		want := tech.Track12
		if inst.Tier == tech.TierTop {
			want = tech.Track9
		}
		if inst.Master.Track != want {
			t.Fatalf("%s on %v uses %v library", inst.Name, inst.Tier, inst.Master.Track)
		}
	}
}

func TestHomogeneousConfigsSingleLibrary(t *testing.T) {
	src := cpuSrc(t)
	for cfg, want := range map[ConfigName]tech.Track{
		Config2D9T:   tech.Track9,
		ConfigM3D12T: tech.Track12,
	} {
		r := runCfg(t, src, cfg, testClock)
		for _, inst := range r.Design.Instances {
			if inst.Master.Function.IsMacro() {
				continue
			}
			if inst.Master.Track != want {
				t.Fatalf("%s: instance %s uses %v", cfg, inst.Name, inst.Master.Track)
			}
		}
	}
}

// The headline Table VII shapes at iso-frequency.
func TestPaperShapes(t *testing.T) {
	src := cpuSrc(t)
	res := map[ConfigName]*PPAC{}
	for _, cfg := range AllConfigs {
		res[cfg] = runCfg(t, src, cfg, testClock).PPAC
	}
	het := res[ConfigHetero]

	// Timing: 12-track and hetero meet; 9-track fails hard.
	if !res[Config2D12T].TimingMet() {
		t.Error("2D-12T must meet its own f_max")
	}
	if !het.TimingMet() {
		t.Errorf("hetero must close timing, WNS=%v", het.WNS)
	}
	if res[Config2D9T].TimingMet() || res[ConfigM3D9T].TimingMet() {
		t.Error("9-track configs should fail the 12-track f_max")
	}

	// Si area: hetero smallest (12.5 % shrink).
	for _, cfg := range []ConfigName{Config2D9T, Config2D12T, ConfigM3D9T, ConfigM3D12T} {
		if het.SiAreaMM2 >= res[cfg].SiAreaMM2 {
			t.Errorf("hetero Si %v should be below %s %v", het.SiAreaMM2, cfg, res[cfg].SiAreaMM2)
		}
	}
	// Footprint: 3-D halves the 2-D footprint.
	if het.FootprintMM2 >= res[Config2D12T].FootprintMM2*0.6 {
		t.Errorf("hetero footprint %v not ≈half of 2-D %v", het.FootprintMM2, res[Config2D12T].FootprintMM2)
	}
	// Wirelength: 3-D beats 2-D.
	if het.WLm >= res[Config2D12T].WLm {
		t.Errorf("hetero WL %v should beat 2D-12T %v", het.WLm, res[Config2D12T].WLm)
	}
	// Power: hetero below the 12-track implementations.
	if het.PowerMW >= res[Config2D12T].PowerMW || het.PowerMW >= res[ConfigM3D12T].PowerMW {
		t.Errorf("hetero power %v should undercut 12T configs %v/%v",
			het.PowerMW, res[Config2D12T].PowerMW, res[ConfigM3D12T].PowerMW)
	}
	// Delay: homogeneous 12T 3-D is the fastest implementation.
	if res[ConfigM3D12T].EffDelayNS > het.EffDelayNS*1.05 {
		t.Errorf("M3D-12T delay %v should not trail hetero %v", res[ConfigM3D12T].EffDelayNS, het.EffDelayNS)
	}
	// PDP and PPC: hetero wins both against the 12-track configs.
	for _, cfg := range []ConfigName{Config2D12T, ConfigM3D12T} {
		if het.PDPpJ >= res[cfg].PDPpJ {
			t.Errorf("hetero PDP %v should beat %s %v", het.PDPpJ, cfg, res[cfg].PDPpJ)
		}
	}
	for _, cfg := range []ConfigName{Config2D9T, Config2D12T, ConfigM3D9T, ConfigM3D12T} {
		if het.PPC <= res[cfg].PPC {
			t.Errorf("hetero PPC %v should beat %s %v", het.PPC, cfg, res[cfg].PPC)
		}
	}
	// Cost per cm²: 3-D is more expensive per silicon area than 2-D.
	if het.CostPerCm2 <= res[Config2D12T].CostPerCm2 {
		t.Errorf("hetero cost/cm² %v should exceed 2-D %v", het.CostPerCm2, res[Config2D12T].CostPerCm2)
	}
	// Die cost: hetero cheaper than homogeneous 12T 3-D (smaller dies).
	if het.DieCostMicroC >= res[ConfigM3D12T].DieCostMicroC {
		t.Errorf("hetero die cost %v should beat M3D-12T %v", het.DieCostMicroC, res[ConfigM3D12T].DieCostMicroC)
	}
}

func TestHeteroClockTopHeavy(t *testing.T) {
	src := cpuSrc(t)
	r := runCfg(t, src, ConfigHetero, testClock)
	ct := r.Clock
	tot := ct.CountByTier[0] + ct.CountByTier[1]
	if tot == 0 {
		t.Fatal("no clock buffers")
	}
	if frac := float64(ct.CountByTier[tech.TierTop]) / float64(tot); frac < 0.6 {
		t.Errorf("top-die clock fraction = %v, want > 0.6 (paper: >75%%)", frac)
	}
}

func TestAblationSwitches(t *testing.T) {
	src := genSrc(t, designs.CPU, 0.03)
	full := DefaultOptions(testClock)
	r1, err := Run(context.Background(), src, ConfigHetero, full)
	if err != nil {
		t.Fatal(err)
	}
	plain := full
	plain.EnableTimingPartition = false
	plain.Enable3DCTS = false
	plain.EnableRepartition = false
	r2, err := Run(context.Background(), src, ConfigHetero, plain)
	if err != nil {
		t.Fatal(err)
	}
	// Table V shape: the enhanced flow closes timing far better than the
	// plain Pin-3D driving a heterogeneous design.
	if r1.PPAC.WNS < r2.PPAC.WNS {
		t.Errorf("enhanced flow WNS %v should beat plain %v", r1.PPAC.WNS, r2.PPAC.WNS)
	}
}

func TestRunErrors(t *testing.T) {
	src := genSrc(t, designs.AES, 0.05)
	if _, err := Run(context.Background(), src, ConfigHetero, DefaultOptions(0)); err == nil {
		t.Error("zero clock should fail")
	}
	bad := DefaultOptions(1)
	bad.TargetUtil = 0
	if _, err := Run(context.Background(), src, ConfigHetero, bad); err == nil {
		t.Error("zero util should fail")
	}
	if _, err := Run(context.Background(), src, ConfigName("nope"), DefaultOptions(1)); err == nil {
		t.Error("unknown config should fail")
	}
}

func TestFindFmax(t *testing.T) {
	src := genSrc(t, designs.AES, 0.04)
	opt := DefaultFmaxOptions()
	opt.Iterations = 4
	f, err := FindFmax(context.Background(), src, Config2D12T, opt)
	if err != nil {
		t.Fatal(err)
	}
	if f < opt.LoGHz || f > opt.HiGHz {
		t.Fatalf("fmax %v outside bracket", f)
	}
	// The found frequency must actually be achievable.
	r, err := Run(context.Background(), src, Config2D12T, DefaultOptions(f))
	if err != nil {
		t.Fatal(err)
	}
	if r.PPAC.WNS < -opt.SlackFrac/f {
		t.Errorf("fmax %v not met: WNS %v", f, r.PPAC.WNS)
	}
	if _, err := FindFmax(context.Background(), src, Config2D12T, FmaxOptions{LoGHz: 5, HiGHz: 1}); err == nil {
		t.Error("bad bracket should fail")
	}
}

func TestConfigTiers(t *testing.T) {
	if Config2D9T.Tiers() != 1 || Config2D12T.Tiers() != 1 {
		t.Error("2-D tiers wrong")
	}
	if ConfigM3D9T.Tiers() != 2 || ConfigHetero.Tiers() != 2 {
		t.Error("3-D tiers wrong")
	}
}

func TestTimingMet(t *testing.T) {
	p := &PPAC{FreqGHz: 1, WNS: -0.05}
	if !p.TimingMet() {
		t.Error("5% slack at 1 GHz should be met")
	}
	p.WNS = -0.1
	if p.TimingMet() {
		t.Error("10% slack should fail")
	}
}
