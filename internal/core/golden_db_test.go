package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/designs"
)

// -update regenerates the pinned database hashes and the committed .db
// fixtures instead of comparing. Review the diff before committing: a
// changed hash is a format or determinism change.
var updateDB = flag.Bool("update-db", false, "rewrite the design-database goldens under testdata/golden")

const dbShaFile = "testdata/golden/db_sha.json"

// wallZeroedEncoding re-encodes a database with every stage metric's
// wall-clock time cleared — the only field that legitimately differs
// between two runs of the same deterministic flow.
func wallZeroedEncoding(t *testing.T, data []byte) []byte {
	t.Helper()
	dd, err := decodeDesignDB(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dd.metrics {
		dd.metrics[i].Wall = 0
	}
	enc, err := encodeDesignDB(dd)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestDesignDBGolden pins the post-place database of every design under
// both flow shapes at the evaluation scale: the file must be canonically
// encoded (decode→re-encode reproduces it byte for byte) and its
// wall-zeroed hash must match the committed golden.
func TestDesignDBGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale database goldens")
	}
	want := map[string]string{}
	if !*updateDB {
		raw, err := os.ReadFile(dbShaFile)
		if err != nil {
			t.Fatalf("no golden hashes (run with -update-db): %v", err)
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	for _, name := range designs.All {
		src := genSrc(t, name, 0.1)
		for _, cfg := range []ConfigName{Config2D12T, ConfigHetero} {
			key := string(name) + "/" + string(cfg)
			t.Run(key, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "d.db")
				opt := DefaultOptions(testClock)
				opt.StopAfter = StagePlace
				opt.SaveDesign = path
				opt.SaveAfter = StagePlace
				if _, err := Run(context.Background(), src, cfg, opt); err != nil {
					t.Fatal(err)
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyDesignFile(data); err != nil {
					t.Fatalf("not canonically encoded: %v", err)
				}
				sum := sha256.Sum256(wallZeroedEncoding(t, data))
				got[key] = hex.EncodeToString(sum[:])
				if !*updateDB && got[key] != want[key] {
					t.Errorf("database hash drifted:\n got %s\nwant %s", got[key], want[key])
				}
			})
		}
	}
	if *updateDB {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		raw, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dbShaFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenDBFixtures keeps small committed .db files decodable: they
// are the format-version gate — if the wire format changes without a
// version bump, decoding the old bytes fails here (and in the CI
// `designdb verify` leg) before the change ships.
func TestGoldenDBFixtures(t *testing.T) {
	fixtures := map[string]ConfigName{
		"testdata/golden/aes-2d12t.db":  Config2D12T,
		"testdata/golden/aes-hetero.db": ConfigHetero,
	}
	if *updateDB {
		src := genSrc(t, designs.AES, 0.03)
		for path, cfg := range fixtures {
			opt := DefaultOptions(testClock)
			opt.StopAfter = StagePlace
			opt.SaveDesign = path
			opt.SaveAfter = StagePlace
			if _, err := Run(context.Background(), src, cfg, opt); err != nil {
				t.Fatal(err)
			}
			// Strip wall times so the committed bytes are reproducible.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, wallZeroedEncoding(t, data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for path, cfg := range fixtures {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing fixture (run with -update-db): %v", err)
		}
		if err := VerifyDesignFile(data); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		dd, err := decodeDesignDB(data)
		if err != nil {
			t.Fatal(err)
		}
		if dd.config != string(cfg) || dd.stage != StagePlace {
			t.Errorf("%s: holds %s@%s, want %s@%s", path, dd.config, dd.stage, cfg, StagePlace)
		}
	}
}

// TestDesignDBDecodeReEncode asserts the exact identity (not just the
// wall-zeroed hash): decoding a freshly saved database and re-encoding
// it reproduces the input bytes including wall times.
func TestDesignDBDecodeReEncode(t *testing.T) {
	src := genSrc(t, designs.AES, 0.04)
	path := filepath.Join(t.TempDir(), "d.db")
	opt := DefaultOptions(testClock)
	opt.SaveDesign = path
	opt.SaveAfter = StageCTS
	if _, err := Run(context.Background(), src, ConfigHetero, opt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := decodeDesignDB(data)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encodeDesignDB(dd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, data) {
		t.Fatalf("decode→re-encode differs: %d vs %d bytes", len(enc), len(data))
	}
}
