// Package core is the paper's contribution: the Hetero-Pin-3D flow engine
// that implements a netlist in any of the five Fig. 1 configurations —
// 2-D and monolithic-3-D in the 9-track or 12-track library, and the
// heterogeneous 9+12-track 3-D — and reports full PPAC (power,
// performance, area, cost).
//
// The heterogeneous flow composes the substrates exactly as the paper's
// Sec. III describes: a single-technology pseudo-3-D stage, cell-based
// timing criticality feeding the timing-based partitioner, bin-based FM
// on the remainder, the 12.5 % footprint shrink from retargeting the top
// tier to 9-track cells, a 3-D clock tree built with the COVER-cell
// approach, boundary-cell timing/power derates, and the repartitioning
// ECO loop (Algorithm 1) to timing closure.
package core

import (
	"context"
	"fmt"

	"repro/internal/cell"
	"repro/internal/check"
	"repro/internal/cost"
	"repro/internal/cts"
	"repro/internal/flow"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/tech"
)

// ConfigName identifies one of the five implementations of Fig. 1.
type ConfigName string

const (
	Config2D9T   ConfigName = "2D-9T"
	Config2D12T  ConfigName = "2D-12T"
	ConfigM3D9T  ConfigName = "M3D-9T"
	ConfigM3D12T ConfigName = "M3D-12T"
	ConfigHetero ConfigName = "Hetero-M3D"
)

// AllConfigs lists the five configurations in the paper's comparison
// order.
var AllConfigs = []ConfigName{Config2D9T, Config2D12T, ConfigM3D9T, ConfigM3D12T, ConfigHetero}

// Tiers returns 1 for 2-D configs, 2 for 3-D.
func (c ConfigName) Tiers() int {
	switch c {
	case Config2D9T, Config2D12T:
		return 1
	default:
		return 2
	}
}

// Options tunes a flow run.
type Options struct {
	// ClockGHz is the target frequency. The evaluation uses each
	// netlist's 2D-12T f_max (found with FindFmax) for every config.
	ClockGHz float64
	// TargetUtil is the floorplan utilization (paper setup: 0.70).
	TargetUtil float64
	// TimingAreaFrac caps the timing-based pre-assignment at this
	// fraction of total cell area (paper: 20–30 %).
	TimingAreaFrac float64
	// RepairRounds bounds the timing-driven sizing loop.
	RepairRounds int
	// Ablation switches for the Table V study (all true = the paper's
	// full Hetero-Pin-3D; all false = plain Pin-3D driving a hetero
	// design).
	EnableTimingPartition bool
	Enable3DCTS           bool
	EnableRepartition     bool
	// Cost is the die-cost model.
	Cost cost.Model
	// Seed feeds the partitioner.
	Seed int64
	// TopVariant overrides the heterogeneous flow's top-die library
	// (default 9-track). The track-mix exploration sweeps this.
	TopVariant *tech.Variant
	// ForceLevelShifters inserts a voltage level shifter on every
	// tier-crossing net of the heterogeneous design — the style the paper
	// rejects in Sec. III-B; the ablation benchmark measures why.
	ForceLevelShifters bool
	// ForceFullSTA disables the incremental timing engine: every analysis
	// inside the repair and recovery loops recomputes from scratch. The
	// results are identical either way (the engine guarantees it); this is
	// the kill switch for comparing engine statistics and wall time.
	ForceFullSTA bool
	// Events receives structured stage events from the pipeline (nil =
	// none). Must be safe for concurrent use when flows run in parallel.
	Events flow.Sink
	// Check enables design-integrity checking at stage boundaries
	// (default CheckOff). Error-severity findings fail the stage unless
	// CheckReportOnly is set, in which case the flow proceeds and every
	// boundary report lands in Result.Checks (cmd/designlint's mode).
	Check           CheckMode
	CheckReportOnly bool
	// Fault is the fault-injection hook run before every stage body
	// (internal/fault's Plan.Hook; nil = no injection). Installing it
	// auto-enables the extraction audit so injected cache corruption is
	// caught at the next analysis.
	Fault func(*flow.Context, string) error
	// AuditExtraction verifies the RC-extraction cache against fresh
	// extraction before every timing analysis — O(nets) per analysis, so
	// it is off by default and forced on while a fault plan is armed.
	AuditExtraction bool
	// FlowWorkers bounds the intra-flow parallelism of the place, route,
	// STA, and CTS kernels (bisection frontier, per-net extraction
	// fan-out, per-level timing sweeps, clock-tree partitioning). Every
	// kernel is byte-identical at any value, so this trades wall time
	// only. <= 1 runs the kernels serially; the evaluation suite budgets
	// it against its own flow-level parallelism.
	FlowWorkers int
	// SaveDesign writes a binary design database (internal/db) at the
	// stage boundaries named by SaveAfter. A flow later resumed from the
	// file (LoadDesign) finishes byte-identical to this run.
	SaveDesign string
	// SaveAfter names the boundaries to save at, comma-separated
	// (default "place" when SaveDesign is set). Supported boundaries:
	// map, place, legalize, cts, signoff. With more than one boundary
	// the stage name is inserted into the file name before its
	// extension (design.db → design-place.db).
	SaveAfter string
	// LoadDesign resumes the flow from a design database written by
	// SaveDesign: the saved stages are skipped, their state is restored,
	// and the remaining stages run byte-identical to an uninterrupted
	// run. The file must come from the same design, configuration, and
	// flow options (scheduling options like FlowWorkers excepted).
	LoadDesign string
	// StopAfter truncates the flow after the named stage. Used with
	// SaveDesign to produce a snapshot without paying for the full flow;
	// the Result then carries only the state the executed stages built
	// (PPAC is nil before signoff).
	StopAfter string
}

// DefaultOptions returns the evaluation defaults at the given target
// frequency.
func DefaultOptions(clockGHz float64) Options {
	return Options{
		ClockGHz:              clockGHz,
		TargetUtil:            0.70,
		TimingAreaFrac:        0.30,
		RepairRounds:          3,
		EnableTimingPartition: true,
		Enable3DCTS:           true,
		EnableRepartition:     true,
		Cost:                  cost.Default(),
		Seed:                  1,
	}
}

// PPAC is the full result record of one implementation — the rows of
// Tables VI and VII.
type PPAC struct {
	Design string
	Config ConfigName

	FreqGHz float64
	// FootprintMM2 is the die outline area in mm²; SiAreaMM2 multiplies
	// by tier count.
	FootprintMM2 float64
	SiAreaMM2    float64
	// ChipWidthUM is the die width in µm.
	ChipWidthUM float64
	// Density is the average standard-cell utilization (0–1).
	Density float64
	// WLm is total routed wirelength (signal + clock) in meters.
	WLm float64
	// MIVs is the inter-tier via count (0 for 2-D).
	MIVs int
	// PowerMW is total power in mW.
	PowerMW float64
	// LeakageMW, ClockPowerMW break the total down.
	LeakageMW, ClockPowerMW float64
	WNS, TNS                float64
	// EffDelayNS = period − WNS.
	EffDelayNS float64
	// PDPpJ = power × effective delay.
	PDPpJ float64
	// DieCostMicroC is die cost in 10⁻⁶ C'.
	DieCostMicroC float64
	// CostPerCm2 is die cost per cm² of silicon, in 10⁻⁶ C'.
	CostPerCm2 float64
	// PPC = GHz / (W × 10⁻⁶C').
	PPC float64

	Cells      int
	Clock      *cts.Result
	CutSize    int
	Refinement string // free-form flow notes (ECO iterations etc.)
}

// TimingMet reports the paper's closure criterion: |WNS| within ≈7 % of
// the clock period (Sec. IV-A2).
func (p *PPAC) TimingMet() bool {
	period := 1 / p.FreqGHz
	return p.WNS >= -0.07*period
}

// Result bundles the PPAC summary with the implemented design for
// downstream inspection (Table VIII deep dives, figure rendering).
type Result struct {
	PPAC   *PPAC
	Design *netlist.Design
	// Libs are the per-tier libraries ([bottom, top]; top nil for 2-D).
	Libs [2]*cell.Library
	// Clock is the synthesized tree.
	Clock  *cts.Result
	Router *route.Router
	// Timing is the final sign-off analysis and Power its companion
	// breakdown; the Table VIII deep dives read these.
	Timing *sta.Result
	Power  *power.Breakdown
	// Outline is the die rectangle (shared by both tiers in 3-D).
	Outline geom.Rect
	// Stages records every executed pipeline stage's wall time and cell
	// count, in execution order (the -stage-report tables read these).
	Stages []flow.StageMetric
	// Checks holds the design-integrity reports of every checked stage
	// boundary, in run order (nil when Options.Check is off).
	Checks []*check.Report
	// Degraded lists the degraded-mode reasons the flow recorded
	// (flow.Context.MarkDegraded), in first-occurrence order; nil when
	// the flow ran clean.
	Degraded []string
	// Dive caches the Table VIII deep-dive metrics. DeepAnalyze fills it
	// on first call; a result restored from an evaluation checkpoint
	// carries it pre-computed because the live Design/Timing/Power state
	// it derives from is not persisted.
	Dive *DeepDive
	// Restored marks a result rehydrated from an evaluation checkpoint:
	// the table-facing fields above are present but the live design state
	// (Design, Timing, Power, Clock, Router) is not.
	Restored bool
}

// libFor returns the library pair of a configuration.
func libFor(cfg ConfigName) ([2]*cell.Library, error) {
	l9 := cell.NewLibrary(tech.Variant9T())
	l12 := cell.NewLibrary(tech.Variant12T())
	switch cfg {
	case Config2D9T:
		return [2]*cell.Library{l9, nil}, nil
	case Config2D12T:
		return [2]*cell.Library{l12, nil}, nil
	case ConfigM3D9T:
		return [2]*cell.Library{l9, l9}, nil
	case ConfigM3D12T:
		return [2]*cell.Library{l12, l12}, nil
	case ConfigHetero:
		// Fast 12-track bottom, low-power 9-track top (Sec. IV-A1).
		return [2]*cell.Library{l12, l9}, nil
	default:
		return [2]*cell.Library{}, fmt.Errorf("core: unknown config %q", cfg)
	}
}

// Run implements the design in the named configuration as a cancellable
// stage pipeline. src must be a 12-track-mapped netlist (the generators'
// output); each flow clones and re-maps it as its technology requires,
// leaving src untouched.
//
// ctx cancels or deadlines the run: the pipeline checks it before every
// stage and the repair loops poll it between rounds, so a cancelled run
// returns a *flow.Error (wrapping context.Canceled or DeadlineExceeded)
// that attributes the abort to the exact design, config, and stage. A nil
// ctx means no cancellation.
func Run(ctx context.Context, src *netlist.Design, cfg ConfigName, opt Options) (*Result, error) {
	if opt.ClockGHz <= 0 {
		return nil, fmt.Errorf("core: clock %v GHz must be positive", opt.ClockGHz)
	}
	if opt.TargetUtil <= 0 || opt.TargetUtil > 1 {
		return nil, fmt.Errorf("core: utilization %v out of (0,1]", opt.TargetUtil)
	}
	if _, err := ParseCheckMode(string(opt.Check)); err != nil {
		return nil, err
	}
	// The run's context is always cancellable from inside: the fault
	// harness's cancel class and any future watchdog abort through
	// fc.CancelRun exactly like an external caller would.
	runCtx, cancel := context.WithCancel(orBackground(ctx))
	defer cancel()
	fc := flow.NewContext(runCtx, src.Name, string(cfg), opt.Seed)
	fc.Sink = opt.Events
	fc.CancelRun = cancel
	fc.Fault = opt.Fault
	s, stages, err := flowPlan(src, cfg, opt)
	if err != nil {
		return nil, err
	}
	return s.runFlow(fc, stages)
}

// flowPlan builds the flow state and stage list for a configuration
// without executing anything — the single dispatch point the runner,
// the save/load machinery, and StopAfter all share.
func flowPlan(src *netlist.Design, cfg ConfigName, opt Options) (*flowState, []flow.Stage, error) {
	switch cfg {
	case Config2D9T, Config2D12T:
		return plan2D(src, cfg, opt)
	case ConfigM3D9T, ConfigM3D12T:
		return planM3D(src, cfg, opt)
	case ConfigHetero:
		return planHetero(src, opt)
	default:
		return nil, nil, fmt.Errorf("core: unknown config %q", cfg)
	}
}

func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// RunWithRetry runs the flow under the given retry policy: a failure
// whose error chain is marked transient (flow.Retryable) re-attempts the
// whole flow with a fresh derived seed and capped exponential backoff.
// The returned trace records every attempt; the error (if any) is the
// last attempt's, with full design/config/stage attribution.
func RunWithRetry(ctx context.Context, src *netlist.Design, cfg ConfigName, opt Options, policy flow.RetryPolicy) (*Result, *flow.RetryTrace, error) {
	var res *Result
	trace, err := policy.Do(ctx, opt.Seed, func(attempt int, seed int64) error {
		o := opt
		o.Seed = seed
		var rerr error
		res, rerr = Run(ctx, src, cfg, o)
		return rerr
	})
	if err != nil {
		return nil, trace, err
	}
	return res, trace, nil
}
