package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/db"
	"repro/internal/designs"
	"repro/internal/flow"
	"repro/internal/netlist"
)

// ppacBytes is the canonical byte form of a PPAC record, the
// comparison currency of the resume-parity tests: two PPACs are "the
// same result" exactly when their encodings match bit for bit.
func ppacBytes(t *testing.T, p *PPAC) []byte {
	t.Helper()
	if p == nil {
		return nil
	}
	w := db.NewWriter()
	PutPPAC(w, p)
	return w.Bytes()
}

func checksBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	w := db.NewWriter()
	for _, rep := range r.Checks {
		db.PutCheckReport(w, rep)
	}
	return w.Bytes()
}

// metricKey strips the wall-clock time (the one legitimately
// nondeterministic field) from a stage metric.
type metricKey struct {
	Name  string
	Cells int
	Stats string
}

func metricKeys(ms []flow.StageMetric) []metricKey {
	out := make([]metricKey, len(ms))
	for i, m := range ms {
		keys := make([]string, 0, len(m.Stats))
		for k := range m.Stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b bytes.Buffer
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%d;", k, m.Stats[k])
		}
		out[i] = metricKey{Name: m.Name, Cells: m.Cells, Stats: b.String()}
	}
	return out
}

// TestSaveLoadBoundaryMatrix saves the design at every boundary of both
// flow shapes and resumes each save, requiring the resumed flow's final
// PPAC, check reports, degradations, and stage metrics to be
// byte-identical to the uninterrupted run it was carved out of.
func TestSaveLoadBoundaryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full save/load matrix")
	}
	src := genSrc(t, designs.AES, 0.05)
	for _, cfg := range []ConfigName{Config2D12T, ConfigHetero} {
		opt := DefaultOptions(testClock)
		opt.Check = CheckFull
		opt.CheckReportOnly = true

		base, err := Run(context.Background(), src, cfg, opt)
		if err != nil {
			t.Fatalf("%s: baseline: %v", cfg, err)
		}
		wantPPAC := ppacBytes(t, base.PPAC)
		wantChecks := checksBytes(t, base)
		wantMetrics := metricKeys(base.Stages)

		for _, boundary := range saveBoundaries {
			t.Run(string(cfg)+"/"+boundary, func(t *testing.T) {
				dir := t.TempDir()
				path := filepath.Join(dir, "design.db")
				save := opt
				save.SaveDesign = path
				save.SaveAfter = boundary
				if _, err := Run(context.Background(), src, cfg, save); err != nil {
					t.Fatalf("save run: %v", err)
				}

				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("no database written: %v", err)
				}
				if err := VerifyDesignFile(data); err != nil {
					t.Fatalf("saved file not canonical: %v", err)
				}

				load := opt
				load.LoadDesign = path
				res, err := Run(context.Background(), src, cfg, load)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if got := ppacBytes(t, res.PPAC); !bytes.Equal(got, wantPPAC) {
					t.Errorf("resumed PPAC differs from uninterrupted run:\n got %+v\nwant %+v", res.PPAC, base.PPAC)
				}
				if got := checksBytes(t, res); !bytes.Equal(got, wantChecks) {
					t.Errorf("resumed check reports differ (%d vs %d reports)", len(res.Checks), len(base.Checks))
				}
				if got := metricKeys(res.Stages); len(got) != len(wantMetrics) {
					t.Errorf("stage metric count %d, want %d", len(got), len(wantMetrics))
				} else {
					for i := range got {
						if got[i] != wantMetrics[i] {
							t.Errorf("stage %d metric differs:\n got %+v\nwant %+v", i, got[i], wantMetrics[i])
						}
					}
				}
				if len(res.Degraded) != len(base.Degraded) {
					t.Errorf("degradations %v, want %v", res.Degraded, base.Degraded)
				}
			})
		}
	}
}

// TestSaveLoadResumeWorkers proves the FLOW_WORKERS independence of the
// resume path: a design saved under serial execution resumes under
// 8-way intra-flow parallelism onto the same bytes.
func TestSaveLoadResumeWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-worker resume")
	}
	src := genSrc(t, designs.AES, 0.05)
	opt := DefaultOptions(testClock)
	opt.FlowWorkers = 1

	base, err := Run(context.Background(), src, ConfigHetero, opt)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "design.db")
	save := opt
	save.SaveDesign = path
	save.SaveAfter = StagePlace
	if _, err := Run(context.Background(), src, ConfigHetero, save); err != nil {
		t.Fatal(err)
	}

	load := opt
	load.FlowWorkers = 8
	load.LoadDesign = path
	res, err := Run(context.Background(), src, ConfigHetero, load)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ppacBytes(t, res.PPAC), ppacBytes(t, base.PPAC); !bytes.Equal(got, want) {
		t.Errorf("PPAC after workers=8 resume differs from workers=1 baseline:\n got %+v\nwant %+v", res.PPAC, base.PPAC)
	}
}

// TestNetlistExportImportIdentity round-trips a mid-flow netlist through
// its snapshot: import must rebuild an equivalent design whose own
// export encodes to the same bytes.
func TestNetlistExportImportIdentity(t *testing.T) {
	src := genSrc(t, designs.CPU, 0.03)
	opt := DefaultOptions(testClock)
	opt.StopAfter = StagePlace
	res, err := Run(context.Background(), src, ConfigHetero, opt)
	if err != nil {
		t.Fatal(err)
	}
	snapBytes := func(s interface {
		Encode(*db.Writer) error
	}) []byte {
		w := db.NewWriter()
		if err := s.Encode(w); err != nil {
			t.Fatal(err)
		}
		return w.Bytes()
	}
	snap := res.Design.ExportState()
	first := snapBytes(&db.NetlistSection{Snap: snap})
	d2, err := netlist.ImportState(snap)
	if err != nil {
		t.Fatal(err)
	}
	second := snapBytes(&db.NetlistSection{Snap: d2.ExportState()})
	if !bytes.Equal(first, second) {
		t.Fatalf("export→import→export not identical (%d vs %d bytes)", len(first), len(second))
	}
}

// TestLoadDesignErrors covers the loader's refusal paths: a fingerprint
// from different options, a design-name mismatch, and a corrupted file.
func TestLoadDesignErrors(t *testing.T) {
	src := genSrc(t, designs.AES, 0.04)
	opt := DefaultOptions(testClock)
	opt.StopAfter = StagePlace
	path := filepath.Join(t.TempDir(), "d.db")
	opt.SaveDesign = path
	opt.SaveAfter = StagePlace
	if _, err := Run(context.Background(), src, Config2D12T, opt); err != nil {
		t.Fatal(err)
	}

	load := DefaultOptions(testClock)
	load.LoadDesign = path
	load.RepairRounds++ // shapes the trajectory → fingerprint differs
	if _, err := Run(context.Background(), src, Config2D12T, load); !errors.Is(err, ErrOptionsMismatch) {
		t.Errorf("changed options: got %v, want ErrOptionsMismatch", err)
	}

	load = DefaultOptions(testClock)
	load.LoadDesign = path
	if _, err := Run(context.Background(), src, ConfigHetero, load); err == nil {
		t.Error("loading a 2D-12T save into the hetero flow should fail")
	}

	other := genSrc(t, designs.CPU, 0.03)
	if _, err := Run(context.Background(), other, Config2D12T, load); err == nil {
		t.Error("loading another design's save should fail")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	badPath := filepath.Join(t.TempDir(), "bad.db")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	load.LoadDesign = badPath
	if _, err := Run(context.Background(), src, Config2D12T, load); !errors.Is(err, db.ErrCorrupt) {
		t.Errorf("bit-flipped file: got %v, want ErrCorrupt", err)
	}
}

func TestParseSaveAfter(t *testing.T) {
	set, err := parseSaveAfter("")
	if err != nil || !set[StagePlace] || len(set) != 1 {
		t.Errorf("default: %v %v", set, err)
	}
	set, err = parseSaveAfter("map, cts")
	if err != nil || !set[StageMap] || !set[StageCTS] || len(set) != 2 {
		t.Errorf("list: %v %v", set, err)
	}
	if _, err := parseSaveAfter("synth"); err == nil {
		t.Error("synth is not a boundary")
	}
	if _, err := parseSaveAfter(","); err == nil {
		t.Error("empty list should fail")
	}
}

func TestSavePathFor(t *testing.T) {
	if got := savePathFor("out/d.db", StageCTS, false); got != "out/d.db" {
		t.Errorf("single: %q", got)
	}
	if got := savePathFor("out/d.db", StageCTS, true); got != "out/d-cts.db" {
		t.Errorf("multi: %q", got)
	}
	if got := savePathFor("out/d", StageMap, true); got != "out/d-map" {
		t.Errorf("no ext: %q", got)
	}
}

// TestStopAfter checks the truncation option on its own: the flow ends
// at the named stage with partial results and no sign-off record.
func TestStopAfter(t *testing.T) {
	src := genSrc(t, designs.AES, 0.04)
	opt := DefaultOptions(testClock)
	opt.StopAfter = StageLegalize
	res, err := Run(context.Background(), src, Config2D12T, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.PPAC != nil {
		t.Error("stopped flow should have no PPAC")
	}
	if n := len(res.Stages); n != 4 {
		t.Errorf("expected 4 executed stages, got %d", n)
	}
	opt.StopAfter = "nope"
	if _, err := Run(context.Background(), src, Config2D12T, opt); err == nil {
		t.Error("unknown stop stage should fail")
	}
}
