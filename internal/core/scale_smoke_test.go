package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/tech"
)

// TestScaleFullFlowSmoke implements the suite's largest netlist at the
// paper's full scale (1.0 — netcard, ~250 k cells) in the heterogeneous
// configuration, end to end. It is the one test that exercises the
// dense-index data layers at the size they were rebuilt for; everything
// else in the repository runs scaled-down netlists. Skipped under
// -short; CI runs it in a dedicated long leg.
func TestScaleFullFlowSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale (1.0) flow smoke runs in the long CI leg; skipped with -short")
	}
	lib := cell.NewLibrary(tech.Variant12T())
	d, err := designs.Generate(designs.Netcard, lib, designs.Params{Scale: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), d, ConfigHetero, DefaultOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	p := res.PPAC
	if p == nil {
		t.Fatal("flow finished without a PPAC record")
	}
	if len(res.Degraded) != 0 {
		t.Errorf("flow degraded: %v", res.Degraded)
	}
	if p.Cells < 100_000 {
		t.Errorf("netcard @1.0 implemented %d cells, want a paper-scale netlist (>= 100k)", p.Cells)
	}
	if p.MIVs <= 0 {
		t.Errorf("hetero 3-D flow produced %d MIVs, want > 0", p.MIVs)
	}
	if !(p.PowerMW > 0) || !(p.WLm > 0) || !(p.FootprintMM2 > 0) {
		t.Errorf("degenerate PPAC: power=%v mW, WL=%v m, footprint=%v mm²",
			p.PowerMW, p.WLm, p.FootprintMM2)
	}
	if math.IsNaN(p.WNS) || math.IsInf(p.WNS, 0) {
		t.Errorf("WNS = %v, want finite", p.WNS)
	}
}
