package core

import (
	"testing"

	"repro/internal/tech"
)

func TestDeepAnalyzeCPU(t *testing.T) {
	src := cpuSrc(t)
	for _, cfg := range []ConfigName{Config2D12T, ConfigM3D12T, ConfigHetero} {
		r := runCfg(t, src, cfg, testClock)
		dd, err := DeepAnalyze(r)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if !dd.HasMacros {
			t.Errorf("%s: CPU deep dive missing macros", cfg)
		}
		if dd.MemOutLatencyPS <= 0 {
			t.Errorf("%s: memory output latency = %v", cfg, dd.MemOutLatencyPS)
		}
		if dd.ClockBuffers == 0 || dd.ClockBufferAreaUM2 <= 0 {
			t.Errorf("%s: clock stats empty", cfg)
		}
		if dd.PathCells == 0 || dd.PathDelayNS <= 0 {
			t.Errorf("%s: critical path empty", cfg)
		}
		if dd.TopCells+dd.BottomCells != dd.PathCells {
			t.Errorf("%s: tier cells don't sum", cfg)
		}
		if cfg.Tiers() == 1 {
			if dd.TopCells != 0 || dd.TopBuffers != 0 {
				t.Errorf("%s: 2-D design has top-tier content", cfg)
			}
		}
	}
}

// Table VIII shapes that distinguish the heterogeneous implementation.
func TestDeepDiveHeteroShapes(t *testing.T) {
	src := cpuSrc(t)
	het, err := DeepAnalyze(runCfg(t, src, ConfigHetero, testClock))
	if err != nil {
		t.Fatal(err)
	}
	m3d, err := DeepAnalyze(runCfg(t, src, ConfigM3D12T, testClock))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DeepAnalyze(runCfg(t, src, Config2D12T, testClock))
	if err != nil {
		t.Fatal(err)
	}

	// Clock tree: hetero is top-heavy with smaller buffer area but worse
	// latency than homogeneous 3-D.
	if het.TopBuffers <= het.BottomBuffers {
		t.Errorf("hetero clock should be top-heavy: %d top vs %d bottom",
			het.TopBuffers, het.BottomBuffers)
	}
	if het.ClockBufferAreaUM2 >= m3d.ClockBufferAreaUM2 {
		t.Errorf("hetero clock area %v should be below M3D-12T %v",
			het.ClockBufferAreaUM2, m3d.ClockBufferAreaUM2)
	}
	if het.ClockMaxLatencyNS <= m3d.ClockMaxLatencyNS {
		t.Errorf("hetero clock latency %v should exceed M3D-12T %v",
			het.ClockMaxLatencyNS, m3d.ClockMaxLatencyNS)
	}

	// Critical path: most cells on the fast bottom die, and the slow-tier
	// average stage delay far above the fast-tier one.
	if het.BottomCells <= het.TopCells {
		t.Errorf("hetero critical path should favour the fast die: %d bottom vs %d top",
			het.BottomCells, het.TopCells)
	}
	if het.TopCells > 0 && het.AvgTopDelayNS <= het.AvgBotDelayNS {
		t.Errorf("slow-tier stage delay %v should exceed fast-tier %v",
			het.AvgTopDelayNS, het.AvgBotDelayNS)
	}

	// Memory interconnects: 3-D shortens macro nets vs 2-D.
	if het.MemOutLatencyPS >= d2.MemOutLatencyPS {
		t.Errorf("hetero memory latency %v should beat 2-D %v",
			het.MemOutLatencyPS, d2.MemOutLatencyPS)
	}
}

func TestDeepAnalyzeRequiresData(t *testing.T) {
	if _, err := DeepAnalyze(&Result{}); err == nil {
		t.Error("empty result should fail")
	}
}

func TestPathSkewGuards(t *testing.T) {
	src := cpuSrc(t)
	r := runCfg(t, src, ConfigHetero, testClock)
	paths := r.Timing.CriticalPaths(5)
	for _, p := range paths {
		if skew, ok := pathSkew(r.Clock.Latency, p); ok {
			// Sane bound: skew within the max tree skew.
			if skew > r.Clock.MaxSkew+1e-9 || skew < -r.Clock.MaxSkew-1e-9 {
				t.Errorf("path skew %v outside tree skew ±%v", skew, r.Clock.MaxSkew)
			}
		}
	}
	_ = tech.TierTop
}
