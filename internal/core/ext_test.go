package core

import (
	"context"
	"testing"

	"repro/internal/cell"
	"repro/internal/tech"
)

func TestHeteroTopVariantOverride(t *testing.T) {
	src := genSrc(t, "cpu", 0.03)
	v11, err := tech.MakeVariant(11)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(testClock)
	opt.TopVariant = &v11
	r, err := Run(context.Background(), src, ConfigHetero, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Top tier carries 11-track cells.
	found := false
	for _, inst := range r.Design.Instances {
		if inst.Master.Function.IsMacro() {
			continue
		}
		if inst.Tier == tech.TierTop {
			if inst.Master.Track != tech.Track(11) {
				t.Fatalf("top-tier cell %s uses %v", inst.Name, inst.Master.Track)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no top-tier cells")
	}
	// An 11-track top die shrinks less than a 9-track one.
	r9, err := Run(context.Background(), src, ConfigHetero, DefaultOptions(testClock))
	if err != nil {
		t.Fatal(err)
	}
	if r.PPAC.SiAreaMM2 <= r9.PPAC.SiAreaMM2 {
		t.Errorf("11-track top Si %v should exceed 9-track top %v",
			r.PPAC.SiAreaMM2, r9.PPAC.SiAreaMM2)
	}
	// ... and burns more power (higher VDD, bigger cells).
	if r.PPAC.PowerMW <= r9.PPAC.PowerMW {
		t.Errorf("11-track top power %v should exceed 9-track top %v",
			r.PPAC.PowerMW, r9.PPAC.PowerMW)
	}
}

func TestHeteroForceLevelShifters(t *testing.T) {
	src := genSrc(t, "cpu", 0.03)
	base, err := Run(context.Background(), src, ConfigHetero, DefaultOptions(testClock))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(testClock)
	opt.ForceLevelShifters = true
	shifted, err := Run(context.Background(), src, ConfigHetero, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Shifters exist and the design stays consistent.
	if err := shifted.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, inst := range shifted.Design.Instances {
		if inst.Master.Function == cell.FuncLevelSh {
			count++
		}
	}
	if count == 0 {
		t.Fatal("no level shifters inserted")
	}
	// The paper's Sec. III-B claim: shifters cost cells, power, and
	// timing.
	if shifted.PPAC.Cells <= base.PPAC.Cells {
		t.Error("shifters should add cells")
	}
	if shifted.PPAC.PowerMW <= base.PPAC.PowerMW {
		t.Errorf("shifters should cost power: %v vs %v", shifted.PPAC.PowerMW, base.PPAC.PowerMW)
	}
	if shifted.PPAC.WNS >= base.PPAC.WNS {
		t.Errorf("shifters should hurt timing: WNS %v vs %v", shifted.PPAC.WNS, base.PPAC.WNS)
	}
}
