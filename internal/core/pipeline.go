package core

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/check"
	"repro/internal/cts"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/tech"
)

// Stage names of the flow pipelines, in execution order. Every flow is a
// subset of these; the per-stage metrics and events use these names.
const (
	// StageMap clones the source netlist onto the flow's base library.
	StageMap = "map"
	// StageSynth is the pre-placement sizing pass at the target clock.
	StageSynth = "synth"
	// StageMacros balances hard macros across the two dies (3-D only).
	StageMacros = "macro-tiers"
	// StagePlace floorplans and globally places the design, with
	// congestion-driven utilization retries (the route-feasibility
	// check).
	StagePlace = "place"
	// StageTimingPartition pins the most timing-critical cell area to
	// the fast die (Hetero-Pin-3D, Sec. III-A1).
	StageTimingPartition = "timing-partition"
	// StagePartition is the bin-based FM min-cut tier partitioning.
	StagePartition = "partition"
	// StageRetarget remaps the top die onto the low-power library.
	StageRetarget = "retarget"
	// StageShifters inserts per-crossing level shifters (ablation only).
	StageShifters = "level-shifters"
	// StageLegalize snaps cells onto their tier's row grid.
	StageLegalize = "legalize"
	// StageCTS builds the clock tree.
	StageCTS = "cts"
	// StageRepair is the post-placement timing-driven sizing loop
	// (STA + repair rounds).
	StageRepair = "timing-repair"
	// StageECO is the repartitioning ECO loop (Algorithm 1).
	StageECO = "eco"
	// StageFinalRepair is the full post-ECO repair pass (hetero only).
	StageFinalRepair = "final-repair"
	// StagePower downsizes comfortably-passing cells to recover power.
	StagePower = "power-recovery"
	// StageSignoff runs final power analysis and assembles the PPAC
	// record.
	StageSignoff = "signoff"
)

// flowState is the mutable state a flow pipeline threads through its
// stages. The stage functions below are shared by the 2-D, M3D, and
// Hetero-Pin-3D pipelines; each flow file composes the list it needs.
type flowState struct {
	cfg ConfigName
	opt Options
	src *netlist.Design

	// tiers and areaScale parameterize the floorplan (1 tier for 2-D;
	// the hetero flow carries its retarget shrink in areaScale).
	tiers     int
	areaScale float64

	libs      [2]*cell.Library
	d         *netlist.Design
	fp        *place.Floorplan
	ct        *cts.Result
	router    *route.Router
	cache     *route.Cache
	env       *timingEnv
	st        *sta.Result
	pw        *power.Breakdown
	ppac      *PPAC
	preassign map[*netlist.Instance]tech.Tier
	tres      *partition.TierResult

	notes      string
	notesExtra string

	// checks is the design-integrity session spanning the flow's
	// instrumented stage boundaries (nil when Options.Check is off).
	checks *check.Session
	// audit verifies the extraction cache before every analysis (forced
	// on while a fault plan is armed).
	audit bool
}

// execute runs the composed pipeline and assembles the Result.
func (s *flowState) execute(fc *flow.Context, stages []flow.Stage) (*Result, error) {
	fc.Cells = func() int {
		if s.d == nil {
			return 0
		}
		return len(s.d.Instances)
	}
	if s.opt.Check != CheckOff && s.opt.Check != "" {
		if s.checks == nil {
			// A flow resumed from a design database arrives with the saved
			// session (ENG-003 monotonicity baseline) already restored.
			s.checks = &check.Session{}
		}
		fc.Check = s.checkBoundary
	}
	s.audit = s.opt.AuditExtraction || fc.Fault != nil
	fc.Degrade = s.degrade
	fc.Corrupt = s.corrupt
	if err := flow.Run(fc, stages); err != nil {
		return nil, err
	}
	res := &Result{
		PPAC:     s.ppac,
		Design:   s.d,
		Libs:     s.libs,
		Clock:    s.ct,
		Router:   s.router,
		Timing:   s.st,
		Power:    s.pw,
		Stages:   fc.Metrics(),
		Degraded: fc.Degradations(),
	}
	if s.fp != nil {
		// StopAfter can end the flow before placement; there is no outline
		// to report then.
		res.Outline = s.fp.Outline
	}
	if s.checks != nil {
		res.Checks = s.checks.Reports()
	}
	return res, nil
}

// degrade is the flow's graceful-degradation policy (the Degrade hook):
// failures that mean "a retained engine view can no longer be trusted" —
// the extraction audit's divergence finding or an ENG-class
// design-integrity failure — are absorbed by rebuilding every retained
// view from ground truth and pinning the timing engine to full
// recomputes, after which the runner re-runs the stage. Anything else
// (DRC/ERC findings, engine errors, panics) is a genuine flow failure
// and propagates with attribution.
func (s *flowState) degrade(fc *flow.Context, stage string, err error) bool {
	var rf *check.RuleFailure
	switch {
	case errors.Is(err, sta.ErrDiverged):
	case errors.As(err, &rf) && rf.OnlyClass("ENG"):
	default:
		return false
	}
	if s.d != nil {
		// Repair the journal first: the revision counters move strictly
		// past every previously handed-out value, so engine views keyed
		// on old revisions all read as stale.
		s.d.Reconcile()
	}
	if s.cache != nil {
		s.cache.Invalidate()
	}
	if s.env != nil {
		s.env.close() // next analyze rebuilds the timer from scratch
		s.env.forceFull = true
	}
	s.opt.ForceFullSTA = true
	fc.AddStat(flow.StatDegradeFullSTA, 1)
	fc.MarkDegraded(flow.DegradeFullSTA)
	return true
}

// corrupt applies a named corruption to a flow-owned engine structure —
// the fault harness's ClassCorrupt targets. Only structures that exist
// at the injection point can be corrupted; arming a cache corruption
// before the timing environment is bound reports an error (which the
// harness surfaces as an attributed stage failure).
func (s *flowState) corrupt(target string) error {
	switch target {
	case fault.TargetCache:
		if s.cache == nil {
			return fmt.Errorf("core: extraction cache not built yet (arm the fault at a repair or later stage)")
		}
		s.cache.Poison(s.opt.Seed)
		return nil
	case fault.TargetJournal:
		if s.d == nil {
			return fmt.Errorf("core: no design yet (arm the fault after the map stage)")
		}
		// Rewind all the way: a partial rewind can land above the last
		// checked boundary's high-water mark and go undetected.
		s.d.CorruptTopoRev(^uint64(0))
		return nil
	default:
		return fmt.Errorf("core: unknown corruption target %q", target)
	}
}

// stageMap clones the source onto the base (bottom) library and prepares
// it for implementation.
func (s *flowState) stageMap(fc *flow.Context) error {
	d, err := cloneMapped(s.src, s.libs[0], s.src.Name)
	if err != nil {
		return err
	}
	s.d = d
	return synth.Prepare(s.d, s.libs[0], synth.DefaultOptions())
}

// stageSynth runs the pre-placement sizing pass at the target clock.
func (s *flowState) stageSynth(fc *flow.Context) error {
	return preSizeForClock(fc, s.d, s.libs, 1/s.opt.ClockGHz, 3, s.opt.ForceFullSTA, s.opt.FlowWorkers)
}

// stageMacros balances hard macros across the dies.
func (s *flowState) stageMacros(fc *flow.Context) error {
	s.preassign = assignMacroTiers(s.d)
	return nil
}

// stagePlace floorplans and globally places with congestion retries, then
// creates the flow's router (shared by every later timing analysis).
func (s *flowState) stagePlace(fc *flow.Context) error {
	fp, err := placeWithCongestionRetry(fc, s.d, s.opt, s.tiers, s.areaScale)
	if err != nil {
		return err
	}
	s.fp = fp
	s.router = route.New()
	s.router.Workers = s.opt.FlowWorkers
	s.router.Par = &par.Stats{}
	return nil
}

// stagePartition runs the bin-based FM tier partitioner with the
// homogeneous-M3D balance targets.
func (s *flowState) stagePartition(fc *flow.Context) error {
	topt := partition.DefaultTierOptions()
	topt.FM.Seed = s.opt.Seed
	tres, err := partition.TierPartition(s.d, s.fp.Core, s.preassign, topt)
	if err != nil {
		return err
	}
	s.tres = tres
	return nil
}

// stageLegalize snaps every cell onto its tier's row grid.
func (s *flowState) stageLegalize(fc *flow.Context) error {
	_, err := place.LegalizeTiers(s.d, s.fp.Core, rowHeights(s.libs), s.tiers)
	return err
}

// stageCTS builds the clock tree in the given mode.
func (s *flowState) stageCTS(mode cts.Mode) func(*flow.Context) error {
	return func(fc *flow.Context) error {
		copt := cts.DefaultOptions(mode, s.libs)
		copt.Workers = s.opt.FlowWorkers
		copt.Par = &par.Stats{}
		ct, err := cts.Build(s.d, copt)
		if err != nil {
			return err
		}
		fc.AddStat(flow.StatParBatches, copt.Par.Batches)
		fc.AddStat(flow.StatParTasks, copt.Par.Tasks)
		s.ct = ct
		return nil
	}
}

// bindTimingEnv assembles the timing environment used by the repair and
// recovery stages (requires the router and clock tree): one persistent
// timing session over one shared extraction cache, serving every
// analysis from here to sign-off.
func (s *flowState) bindTimingEnv(fc *flow.Context) {
	if s.cache == nil {
		s.cache = route.NewCache(s.router, s.d)
	}
	s.env = &timingEnv{
		fc:        fc,
		d:         s.d,
		libs:      s.libs,
		ex:        s.cache,
		cache:     s.cache,
		period:    1 / s.opt.ClockGHz,
		latency:   s.ct.LatencyFunc(),
		forceFull: s.opt.ForceFullSTA,
		audit:     s.audit,
		workers:   s.opt.FlowWorkers,
	}
}

// stageRepair is the standard post-CTS timing repair loop.
func (s *flowState) stageRepair(fc *flow.Context) error {
	s.bindTimingEnv(fc)
	st, err := repairTiming(s.env, s.fp, s.opt.RepairRounds)
	if err != nil {
		return err
	}
	s.st = st
	return nil
}

// stagePower trades surplus slack for power.
func (s *flowState) stagePower(fc *flow.Context) error {
	st, err := recoverPower(s.env, s.fp, s.st)
	if err != nil {
		return err
	}
	s.st = st
	return nil
}

// stageSignoff runs final power analysis and assembles the PPAC record,
// then retires the flow's timing session.
func (s *flowState) stageSignoff(fc *flow.Context) error {
	cut := 0
	if s.tres != nil {
		cut = s.tres.Cut
	}
	var ex route.Extractor
	if s.cache != nil {
		ex = s.cache
	}
	ppac, pw, err := collect(s.d, s.cfg, s.opt, s.fp, s.ct, s.st, s.router, ex, s.notes, cut)
	if err != nil {
		return err
	}
	s.ppac, s.pw = ppac, pw
	if s.router != nil && s.router.Par != nil {
		// Wirelength/MIV reductions fan out through the router; their
		// counters are drained once, here, where collect runs them.
		fc.AddStat(flow.StatParBatches, s.router.Par.Batches)
		fc.AddStat(flow.StatParTasks, s.router.Par.Tasks)
	}
	if s.env != nil {
		s.env.reportStats()
		s.env.close()
	}
	return nil
}
