package core

import (
	"repro/internal/cell"
	"repro/internal/check"
	"repro/internal/cts"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/tech"
)

// Stage names of the flow pipelines, in execution order. Every flow is a
// subset of these; the per-stage metrics and events use these names.
const (
	// StageMap clones the source netlist onto the flow's base library.
	StageMap = "map"
	// StageSynth is the pre-placement sizing pass at the target clock.
	StageSynth = "synth"
	// StageMacros balances hard macros across the two dies (3-D only).
	StageMacros = "macro-tiers"
	// StagePlace floorplans and globally places the design, with
	// congestion-driven utilization retries (the route-feasibility
	// check).
	StagePlace = "place"
	// StageTimingPartition pins the most timing-critical cell area to
	// the fast die (Hetero-Pin-3D, Sec. III-A1).
	StageTimingPartition = "timing-partition"
	// StagePartition is the bin-based FM min-cut tier partitioning.
	StagePartition = "partition"
	// StageRetarget remaps the top die onto the low-power library.
	StageRetarget = "retarget"
	// StageShifters inserts per-crossing level shifters (ablation only).
	StageShifters = "level-shifters"
	// StageLegalize snaps cells onto their tier's row grid.
	StageLegalize = "legalize"
	// StageCTS builds the clock tree.
	StageCTS = "cts"
	// StageRepair is the post-placement timing-driven sizing loop
	// (STA + repair rounds).
	StageRepair = "timing-repair"
	// StageECO is the repartitioning ECO loop (Algorithm 1).
	StageECO = "eco"
	// StageFinalRepair is the full post-ECO repair pass (hetero only).
	StageFinalRepair = "final-repair"
	// StagePower downsizes comfortably-passing cells to recover power.
	StagePower = "power-recovery"
	// StageSignoff runs final power analysis and assembles the PPAC
	// record.
	StageSignoff = "signoff"
)

// flowState is the mutable state a flow pipeline threads through its
// stages. The stage functions below are shared by the 2-D, M3D, and
// Hetero-Pin-3D pipelines; each flow file composes the list it needs.
type flowState struct {
	cfg ConfigName
	opt Options
	src *netlist.Design

	// tiers and areaScale parameterize the floorplan (1 tier for 2-D;
	// the hetero flow carries its retarget shrink in areaScale).
	tiers     int
	areaScale float64

	libs      [2]*cell.Library
	d         *netlist.Design
	fp        *place.Floorplan
	ct        *cts.Result
	router    *route.Router
	cache     *route.Cache
	env       *timingEnv
	st        *sta.Result
	pw        *power.Breakdown
	ppac      *PPAC
	preassign map[*netlist.Instance]tech.Tier
	tres      *partition.TierResult

	notes      string
	notesExtra string

	// checks is the design-integrity session spanning the flow's
	// instrumented stage boundaries (nil when Options.Check is off).
	checks *check.Session
}

// execute runs the composed pipeline and assembles the Result.
func (s *flowState) execute(fc *flow.Context, stages []flow.Stage) (*Result, error) {
	fc.Cells = func() int {
		if s.d == nil {
			return 0
		}
		return len(s.d.Instances)
	}
	if s.opt.Check != CheckOff && s.opt.Check != "" {
		s.checks = &check.Session{}
		fc.Check = s.checkBoundary
	}
	if err := flow.Run(fc, stages); err != nil {
		return nil, err
	}
	res := &Result{
		PPAC:    s.ppac,
		Design:  s.d,
		Libs:    s.libs,
		Clock:   s.ct,
		Router:  s.router,
		Timing:  s.st,
		Power:   s.pw,
		Outline: s.fp.Outline,
		Stages:  fc.Metrics(),
	}
	if s.checks != nil {
		res.Checks = s.checks.Reports()
	}
	return res, nil
}

// stageMap clones the source onto the base (bottom) library and prepares
// it for implementation.
func (s *flowState) stageMap(fc *flow.Context) error {
	d, err := cloneMapped(s.src, s.libs[0], s.src.Name)
	if err != nil {
		return err
	}
	s.d = d
	return synth.Prepare(s.d, s.libs[0], synth.DefaultOptions())
}

// stageSynth runs the pre-placement sizing pass at the target clock.
func (s *flowState) stageSynth(fc *flow.Context) error {
	return preSizeForClock(fc, s.d, s.libs, 1/s.opt.ClockGHz, 3, s.opt.ForceFullSTA)
}

// stageMacros balances hard macros across the dies.
func (s *flowState) stageMacros(fc *flow.Context) error {
	s.preassign = assignMacroTiers(s.d)
	return nil
}

// stagePlace floorplans and globally places with congestion retries, then
// creates the flow's router (shared by every later timing analysis).
func (s *flowState) stagePlace(fc *flow.Context) error {
	fp, err := placeWithCongestionRetry(s.d, s.opt, s.tiers, s.areaScale)
	if err != nil {
		return err
	}
	s.fp = fp
	s.router = route.New()
	return nil
}

// stagePartition runs the bin-based FM tier partitioner with the
// homogeneous-M3D balance targets.
func (s *flowState) stagePartition(fc *flow.Context) error {
	topt := partition.DefaultTierOptions()
	topt.FM.Seed = s.opt.Seed
	tres, err := partition.TierPartition(s.d, s.fp.Core, s.preassign, topt)
	if err != nil {
		return err
	}
	s.tres = tres
	return nil
}

// stageLegalize snaps every cell onto its tier's row grid.
func (s *flowState) stageLegalize(fc *flow.Context) error {
	_, err := place.LegalizeTiers(s.d, s.fp.Core, rowHeights(s.libs), s.tiers)
	return err
}

// stageCTS builds the clock tree in the given mode.
func (s *flowState) stageCTS(mode cts.Mode) func(*flow.Context) error {
	return func(fc *flow.Context) error {
		ct, err := cts.Build(s.d, cts.DefaultOptions(mode, s.libs))
		if err != nil {
			return err
		}
		s.ct = ct
		return nil
	}
}

// bindTimingEnv assembles the timing environment used by the repair and
// recovery stages (requires the router and clock tree): one persistent
// timing session over one shared extraction cache, serving every
// analysis from here to sign-off.
func (s *flowState) bindTimingEnv(fc *flow.Context) {
	if s.cache == nil {
		s.cache = route.NewCache(s.router, s.d)
	}
	s.env = &timingEnv{
		fc:        fc,
		d:         s.d,
		libs:      s.libs,
		ex:        s.cache,
		cache:     s.cache,
		period:    1 / s.opt.ClockGHz,
		latency:   s.ct.LatencyFunc(),
		forceFull: s.opt.ForceFullSTA,
	}
}

// stageRepair is the standard post-CTS timing repair loop.
func (s *flowState) stageRepair(fc *flow.Context) error {
	s.bindTimingEnv(fc)
	st, err := repairTiming(s.env, s.fp, s.opt.RepairRounds)
	if err != nil {
		return err
	}
	s.st = st
	return nil
}

// stagePower trades surplus slack for power.
func (s *flowState) stagePower(fc *flow.Context) error {
	st, err := recoverPower(s.env, s.fp, s.st)
	if err != nil {
		return err
	}
	s.st = st
	return nil
}

// stageSignoff runs final power analysis and assembles the PPAC record,
// then retires the flow's timing session.
func (s *flowState) stageSignoff(fc *flow.Context) error {
	cut := 0
	if s.tres != nil {
		cut = s.tres.Cut
	}
	var ex route.Extractor
	if s.cache != nil {
		ex = s.cache
	}
	ppac, pw, err := collect(s.d, s.cfg, s.opt, s.fp, s.ct, s.st, s.router, ex, s.notes, cut)
	if err != nil {
		return err
	}
	s.ppac, s.pw = ppac, pw
	if s.env != nil {
		s.env.reportStats()
		s.env.close()
	}
	return nil
}
