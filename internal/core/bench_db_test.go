package core

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
)

// Design-database codec benchmarks: the explicit per-field binary
// encoders against the obvious alternative — reflective JSON plus gzip —
// on a real mid-flow payload. The subject is netcard (the suite's
// largest netlist) saved at the placement boundary of the Hetero-M3D
// flow, i.e. exactly the bytes -save-design writes. BENCH_db.json
// records a reference run. Regenerate with:
//
//	go test -run xxx -bench 'BenchmarkDB|BenchmarkJSONGzip' -benchtime 10x ./internal/core/
var benchDBScale = flag.Float64("db-scale", 0.25, "netcard scale for the design-database benchmarks")

var benchDBOnce struct {
	sync.Once
	data []byte // the saved post-place database file
	err  error
}

// benchDBBytes runs netcard through the Hetero-M3D flow up to the
// placement boundary once per process and returns the saved database.
func benchDBBytes(b *testing.B) []byte {
	b.Helper()
	benchDBOnce.Do(func() {
		dir, err := os.MkdirTemp("", "benchdb")
		if err != nil {
			benchDBOnce.err = err
			return
		}
		defer os.RemoveAll(dir)
		src, err := designs.Generate(designs.Netcard, lib12, designs.Params{Scale: *benchDBScale, Seed: 1})
		if err != nil {
			benchDBOnce.err = err
			return
		}
		path := filepath.Join(dir, "netcard.db")
		opt := DefaultOptions(testClock)
		opt.SaveDesign = path
		opt.SaveAfter = StagePlace
		opt.StopAfter = StagePlace
		if _, err := Run(context.Background(), src, ConfigHetero, opt); err != nil {
			benchDBOnce.err = err
			return
		}
		benchDBOnce.data, benchDBOnce.err = os.ReadFile(path)
	})
	if benchDBOnce.err != nil {
		b.Fatal(benchDBOnce.err)
	}
	return benchDBOnce.data
}

func BenchmarkDBEncode(b *testing.B) {
	data := benchDBBytes(b)
	dd, err := decodeDesignDB(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := encodeDesignDB(dd)
		if err != nil {
			b.Fatal(err)
		}
		if len(enc) != len(data) {
			b.Fatalf("non-canonical re-encode: %d vs %d bytes", len(enc), len(data))
		}
	}
}

func BenchmarkDBDecode(b *testing.B) {
	data := benchDBBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeDesignDB(data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSnapshot extracts the netlist snapshot from the saved database —
// the dominant payload — as the subject of the JSON baseline.
func benchSnapshot(b *testing.B) *netlist.Snapshot {
	b.Helper()
	dd, err := decodeDesignDB(benchDBBytes(b))
	if err != nil {
		b.Fatal(err)
	}
	return dd.snap
}

// BenchmarkJSONGzipEncode is the reflection baseline the binary format
// replaces: marshal the netlist snapshot with encoding/json and gzip
// the result. SetBytes uses the binary file size so MB/s is comparable
// across the four benchmarks; the compressed size itself is reported as
// a metric.
func BenchmarkJSONGzipEncode(b *testing.B) {
	data := benchDBBytes(b)
	snap := benchSnapshot(b)
	b.SetBytes(int64(len(data)))
	var gzSize, jsSize int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		js, err := json.Marshal(snap)
		if err != nil {
			b.Fatal(err)
		}
		jsSize = len(js)
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(js); err != nil {
			b.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
		gzSize = buf.Len()
	}
	b.StopTimer()
	b.ReportMetric(float64(gzSize), "gz-bytes")
	b.ReportMetric(float64(jsSize), "json-bytes")
	b.ReportMetric(float64(len(data)), "db-bytes")
}

func BenchmarkJSONGzipDecode(b *testing.B) {
	data := benchDBBytes(b)
	js, err := json.Marshal(benchSnapshot(b))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(js); err != nil {
		b.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		b.Fatal(err)
	}
	gz := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zr, err := gzip.NewReader(bytes.NewReader(gz))
		if err != nil {
			b.Fatal(err)
		}
		var out bytes.Buffer
		if _, err := out.ReadFrom(zr); err != nil {
			b.Fatal(err)
		}
		var snap netlist.Snapshot
		if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
			b.Fatal(err)
		}
	}
}
