package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/flow"
)

// metricSink collects per-stage metrics keyed by stage name (last run
// wins), race-safe for parallel flows.
type metricSink struct {
	mu sync.Mutex
	ms map[string]flow.StageMetric
}

func (s *metricSink) StageStart(design, config, stage string) {}
func (s *metricSink) StageDone(design, config, stage string, m flow.StageMetric, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ms == nil {
		s.ms = make(map[string]flow.StageMetric)
	}
	s.ms[stage] = m
}

func (s *metricSink) stat(stage, key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ms[stage].Stats[key]
}

func sumStat(stages []flow.StageMetric, key string) int64 {
	var n int64
	for _, m := range stages {
		n += m.Stats[key]
	}
	return n
}

// TestFaultInjectionMatrix drives every fault class through the full
// heterogeneous pipeline and asserts the contract of each: recovery with
// a degraded-mode marker where the flow can absorb the fault, or a
// failure attributed to the exact design/config/stage where it cannot.
func TestFaultInjectionMatrix(t *testing.T) {
	src := cpuSrc(t)
	clean := runCfg(t, src, ConfigHetero, testClock)

	cases := []struct {
		name string
		spec string
		// check enables boundary checking (needed to detect the silent
		// journal corruption).
		check CheckMode
		// wantStage is the stage the failure must be attributed to
		// ("" = the run must succeed).
		wantStage string
		// wantCause is matched with errors.Is against the failure.
		wantCause error
		retryable bool
		// wantDegraded is the expected Result.Degraded of a recovered run.
		wantDegraded []string
	}{
		{
			name:      "panic-attributed",
			spec:      "cpu/Hetero-M3D/place=panic",
			wantStage: StagePlace,
		},
		{
			name:      "error-attributed",
			spec:      "*/*/cts=error",
			wantStage: StageCTS,
		},
		{
			name:      "error-retryable-marked",
			spec:      "*/*/cts=error:retryable",
			wantStage: StageCTS,
			retryable: true,
		},
		{
			name:      "cancel-polled-mid-stage",
			spec:      "*/*/timing-repair=cancel",
			wantStage: StageRepair,
			wantCause: context.Canceled,
		},
		{
			name:      "timeout-attributed",
			spec:      "*/*/eco=timeout",
			wantStage: StageECO,
			wantCause: context.DeadlineExceeded,
		},
		{
			name:         "corrupt-cache-recovered",
			spec:         "*/*/eco=corrupt:extraction-cache",
			wantDegraded: []string{flow.DegradeFullSTA},
		},
		{
			name:         "corrupt-journal-recovered",
			spec:         "*/*/power-recovery=corrupt:journal",
			check:        CheckFull,
			wantDegraded: []string{flow.DegradeFullSTA},
		},
		{
			name:      "corrupt-cache-too-early-fails-with-attribution",
			spec:      "*/*/place=corrupt:extraction-cache",
			wantStage: StagePlace,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			plan, err := fault.ParseSpec(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			sink := &metricSink{}
			opt := DefaultOptions(testClock)
			opt.Fault = plan.Hook()
			opt.Events = sink
			opt.Check = tc.check
			r, err := Run(context.Background(), src, ConfigHetero, opt)

			if tc.wantStage != "" { // must fail, with exact attribution
				var fe *flow.Error
				if !errors.As(err, &fe) {
					t.Fatalf("want *flow.Error, got %T: %v", err, err)
				}
				if fe.Design != "cpu" || fe.Config != string(ConfigHetero) || fe.Stage != tc.wantStage {
					t.Errorf("attributed to %s/%s/%s, want cpu/%s/%s",
						fe.Design, fe.Config, fe.Stage, ConfigHetero, tc.wantStage)
				}
				if tc.wantCause != nil && !errors.Is(err, tc.wantCause) {
					t.Errorf("errors.Is(%v) false for %v", tc.wantCause, err)
				}
				if got := flow.Retryable(err); got != tc.retryable {
					t.Errorf("Retryable = %v, want %v", got, tc.retryable)
				}
				var inj *fault.Injected
				if tc.wantCause == nil && tc.name != "corrupt-cache-too-early-fails-with-attribution" &&
					!errors.As(err, &inj) {
					t.Errorf("injection record lost from chain: %v", err)
				}
				if tc.name == "panic-attributed" {
					var pe *flow.PanicError
					if !errors.As(err, &pe) {
						t.Errorf("want *flow.PanicError in chain, got %v", err)
					}
					if sink.stat(StagePlace, flow.StatPanicsRecovered) != 1 {
						t.Errorf("place stats = %v, want one recovered panic", sink.ms[StagePlace].Stats)
					}
				}
				return
			}

			// Must recover with degradation.
			if err != nil {
				t.Fatalf("flow should absorb %s: %v", tc.spec, err)
			}
			if len(r.Degraded) != len(tc.wantDegraded) {
				t.Fatalf("Degraded = %v, want %v", r.Degraded, tc.wantDegraded)
			}
			for i := range tc.wantDegraded {
				if r.Degraded[i] != tc.wantDegraded[i] {
					t.Errorf("Degraded = %v, want %v", r.Degraded, tc.wantDegraded)
				}
			}
			if n := sumStat(r.Stages, flow.StatFaultsInjected); n != 1 {
				t.Errorf("faults injected = %d, want 1", n)
			}
			if n := sumStat(r.Stages, flow.StatStageReruns); n < 1 {
				t.Error("recovery must re-run the failed stage")
			}
			if n := sumStat(r.Stages, flow.StatDegradeFullSTA); n < 1 {
				t.Error("full-STA downgrade not counted")
			}
			// The degradation rebuilds every engine view from ground truth
			// before the re-run, so the recovered flow's sign-off must match
			// the clean flow exactly.
			if r.PPAC.WNS != clean.PPAC.WNS || r.PPAC.PowerMW != clean.PPAC.PowerMW ||
				r.PPAC.WLm != clean.PPAC.WLm {
				t.Errorf("degraded run diverged from clean: WNS %v vs %v, P %v vs %v, WL %v vs %v",
					r.PPAC.WNS, clean.PPAC.WNS, r.PPAC.PowerMW, clean.PPAC.PowerMW, r.PPAC.WLm, clean.PPAC.WLm)
			}
			if len(plan.Pending()) != 0 {
				t.Errorf("injections never fired: %v", plan.Pending())
			}
		})
	}
}

// TestFaultRetryIntegration proves the retry policy turns a transient
// injected failure into a recovered flow: the fault fires on the first
// attempt only (occurrence counting), the second attempt runs clean on a
// fresh derived seed.
func TestFaultRetryIntegration(t *testing.T) {
	src := cpuSrc(t)
	plan, err := fault.ParseSpec("*/*/cts@1=error:retryable")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(testClock)
	opt.Fault = plan.Hook()
	r, trace, err := RunWithRetry(context.Background(), src, ConfigHetero, opt, flow.RetryPolicy{Attempts: 2})
	if err != nil {
		t.Fatalf("second attempt should succeed: %v", err)
	}
	if trace.Attempts != 2 || len(trace.Failures) != 1 {
		t.Errorf("trace = %+v, want 2 attempts with 1 failure", trace)
	}
	var fe *flow.Error
	if !errors.As(trace.Failures[0], &fe) || fe.Stage != StageCTS {
		t.Errorf("first failure lost attribution: %v", trace.Failures[0])
	}
	if r == nil || r.PPAC == nil {
		t.Fatal("no result from the recovered attempt")
	}
}

// TestFaultNonRetryableStopsRetry: a permanent injected error must not
// consume extra attempts even under a generous policy.
func TestFaultNonRetryableStopsRetry(t *testing.T) {
	src := cpuSrc(t)
	plan, err := fault.ParseSpec("*/*/cts=error")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(testClock)
	opt.Fault = plan.Hook()
	_, trace, err := RunWithRetry(context.Background(), src, ConfigHetero, opt, flow.RetryPolicy{Attempts: 3})
	if err == nil {
		t.Fatal("permanent injected error must fail the flow")
	}
	if trace.Attempts != 1 {
		t.Errorf("ran %d attempts, want 1", trace.Attempts)
	}
}

// TestCancelInjectionPromptness: the cancel class models an external
// abort arriving at a stage boundary; the repair loop's mid-stage polling
// must notice before the stage completes, and the abort must never be
// absorbed by degradation or retry.
func TestCancelInjectionPromptness(t *testing.T) {
	src := cpuSrc(t)
	plan, err := fault.ParseSpec("*/*/timing-repair=cancel")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(testClock)
	opt.Fault = plan.Hook()
	_, trace, err := RunWithRetry(context.Background(), src, ConfigM3D12T, opt, flow.RetryPolicy{Attempts: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the chain, got %v", err)
	}
	var fe *flow.Error
	if !errors.As(err, &fe) || fe.Stage != StageRepair {
		t.Errorf("cancellation not attributed to the polling stage: %v", err)
	}
	if trace.Attempts != 1 {
		t.Errorf("cancellation retried %d times, want 1 attempt", trace.Attempts)
	}
}
