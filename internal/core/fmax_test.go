package core

import (
	"math"
	"testing"
)

// TestClampProbe pins the fmax search's probe predictor: the reciprocal
// of the effective delay, clamped to the bracket, with non-positive
// delays (an over-constrained probe whose WNS consumed the whole
// period) jumping to the top of the bracket instead of producing a
// negative or infinite frequency.
func TestClampProbe(t *testing.T) {
	const lo, hi = 0.2, 6.0
	cases := []struct {
		name string
		effD float64
		want float64
	}{
		{"interior", 0.5, 2.0},
		{"clamp-low", 10.0, lo},
		{"clamp-high", 0.01, hi},
		{"zero-delay", 0, hi},
		{"negative-delay", -0.3, hi},
		{"tiny-negative", -1e-18, hi},
	}
	for _, c := range cases {
		got := clampProbe(c.effD, lo, hi)
		if got != c.want {
			t.Errorf("%s: clampProbe(%v) = %v, want %v", c.name, c.effD, got, c.want)
		}
		if math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
			t.Errorf("%s: clampProbe(%v) = %v is not a usable frequency", c.name, c.effD, got)
		}
	}
}
