package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/flow"
	"repro/internal/report"
)

// flowSnapshot renders everything about a completed flow that must be
// invariant under FlowWorkers: the full PPAC (clock tree included), the
// design-integrity check report, and every per-stage engine counter.
// Wall-clock stats are excluded — they are the only metric allowed to
// change with the worker count.
func flowSnapshot(r *Result) string {
	var b strings.Builder
	p := *r.PPAC
	ct := p.Clock
	p.Clock = nil // a pointer would render as an address; dumped below
	fmt.Fprintf(&b, "ppac %+v\n", p)
	if ct != nil {
		fmt.Fprintf(&b, "clock buffers=%d maxLatency=%.9f skew=%.9f\n",
			len(ct.Buffers), ct.MaxLatency, ct.MaxSkew)
		for _, buf := range ct.Buffers {
			fmt.Fprintf(&b, "buf %s tier=%v loc=%v\n", buf.Name, buf.Tier, buf.Loc)
		}
	}
	for _, m := range r.Stages {
		keys := make([]string, 0, len(m.Stats))
		for k := range m.Stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "stage %s cells=%d", m.Name, m.Cells)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, m.Stats[k])
		}
		b.WriteByte('\n')
	}
	b.WriteString(report.CheckTable("checks", r.Checks).String())
	return b.String()
}

// TestFlowWorkersMatrix is the determinism pin for the intra-flow
// parallelism: one full AES Hetero-M3D implementation (checks enabled)
// must produce byte-identical results — PPAC, clock tree, stage
// counters, check report — at FlowWorkers 1, 2, and 8. Run under -race
// in CI, it doubles as the data-race sweep over the parallel place,
// route, STA, and CTS kernels.
func TestFlowWorkersMatrix(t *testing.T) {
	src := genSrc(t, designs.AES, 0.05)

	type run struct {
		workers int
		snap    string
		ppac    PPAC
	}
	var runs []run
	for _, w := range []int{1, 2, 8} {
		opt := DefaultOptions(testClock)
		opt.FlowWorkers = w
		opt.Check = CheckFull
		r, err := Run(context.Background(), src, ConfigHetero, opt)
		if err != nil {
			t.Fatalf("FlowWorkers=%d: %v", w, err)
		}
		p := *r.PPAC
		p.Clock = nil // compared via the snapshot render
		runs = append(runs, run{w, flowSnapshot(r), p})
	}
	for _, r := range runs[1:] {
		if !reflect.DeepEqual(r.ppac, runs[0].ppac) {
			t.Errorf("PPAC differs between FlowWorkers=%d and FlowWorkers=%d:\n%+v\nvs\n%+v",
				runs[0].workers, r.workers, runs[0].ppac, r.ppac)
		}
		if r.snap != runs[0].snap {
			t.Errorf("flow snapshot differs between FlowWorkers=%d and FlowWorkers=%d (first diff line):\n%s",
				runs[0].workers, r.workers, firstDiffLine(runs[0].snap, r.snap))
		}
	}
	// The parallel path must actually have been exercised: the engine
	// counters account scheduled batches/tasks identically at any width.
	if !strings.Contains(runs[0].snap, flow.StatParBatches+"=") {
		t.Error("no par_batches counter in any stage — parallel kernels not wired")
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  %s\n  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}
