package core

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/tech"
)

// DeepDive holds the Table VIII metrics: memory-interconnect, clock
// network, and critical-path breakdowns of one implementation.
type DeepDive struct {
	// --- Memory interconnects (RMS over macro nets; ps / µW) ---
	MemInLatencyPS  float64
	MemOutLatencyPS float64
	MemNetSwitchUW  float64
	HasMacros       bool

	// --- Clock network ---
	ClockBuffers       int
	TopBuffers         int
	BottomBuffers      int
	ClockBufferAreaUM2 float64
	ClockWLmm          float64
	ClockMaxLatencyNS  float64
	ClockMaxSkewNS     float64
	// AvgSkew100NS is the mean launch→capture clock skew over the 100
	// worst paths — the paper's evidence that its clock methodology keeps
	// critical-path skew controlled even when global skew balloons.
	AvgSkew100NS float64

	// --- Critical path ---
	ClockPeriodNS  float64
	SlackNS        float64
	CritSkewNS     float64
	SetupNS        float64
	PathDelayNS    float64
	WireDelayNS    float64
	CellDelayNS    float64
	PathWLum       float64
	TopWLum        float64
	BottomWLum     float64
	PathCells      int
	PathMIVs       int
	TopCells       int
	BottomCells    int
	TopCellDelayNS float64
	BotCellDelayNS float64
	AvgTopDelayNS  float64
	AvgBotDelayNS  float64
}

// DeepAnalyze extracts the Table VIII metrics from a finished flow
// result. The dive is cached on the result: a second call returns the
// same record, and a result restored from an evaluation checkpoint (no
// live design state) serves its persisted dive.
func DeepAnalyze(r *Result) (*DeepDive, error) {
	if r.Dive != nil {
		return r.Dive, nil
	}
	dd, err := deepAnalyze(r)
	if err != nil {
		return nil, err
	}
	r.Dive = dd
	return dd, nil
}

func deepAnalyze(r *Result) (*DeepDive, error) {
	if r.Timing == nil || r.Clock == nil || r.Power == nil {
		return nil, fmt.Errorf("core: result lacks timing/clock/power data")
	}
	d := r.Design
	dd := &DeepDive{ClockPeriodNS: 1 / r.PPAC.FreqGHz}

	// ---- Memory interconnects.
	var inSq, outSq, swSq float64
	var inN, outN, swN int
	for _, inst := range d.Instances {
		if !inst.Master.Function.IsMacro() {
			continue
		}
		dd.HasMacros = true
		if a := d.NetOf(inst, "A"); a != nil {
			inSq += sq(netLatency(r, a))
			inN++
		}
		if q := d.NetOf(inst, "Q"); q != nil {
			outSq += sq(netLatency(r, q))
			outN++
			swSq += sq(r.Power.NetSwitchingPower(q))
			swN++
		}
	}
	if inN > 0 {
		dd.MemInLatencyPS = math.Sqrt(inSq/float64(inN)) * 1000
	}
	if outN > 0 {
		dd.MemOutLatencyPS = math.Sqrt(outSq/float64(outN)) * 1000
	}
	if swN > 0 {
		dd.MemNetSwitchUW = math.Sqrt(swSq / float64(swN))
	}

	// ---- Clock network.
	ct := r.Clock
	dd.ClockBuffers = len(ct.Buffers)
	dd.TopBuffers = ct.CountByTier[tech.TierTop]
	dd.BottomBuffers = ct.CountByTier[tech.TierBottom]
	dd.ClockBufferAreaUM2 = ct.BufferArea
	dd.ClockWLmm = ct.Wirelength / 1000
	dd.ClockMaxLatencyNS = ct.MaxLatency
	dd.ClockMaxSkewNS = ct.MaxSkew

	paths := r.Timing.CriticalPaths(100)
	if len(paths) == 0 {
		return dd, nil
	}
	sum := 0.0
	cnt := 0
	for _, p := range paths {
		if skew, ok := pathSkew(ct.Latency, p); ok {
			sum += skew
			cnt++
		}
	}
	if cnt > 0 {
		dd.AvgSkew100NS = sum / float64(cnt)
	}

	// ---- Critical path (the worst one).
	p := paths[0]
	dd.SlackNS = p.Slack
	if skew, ok := pathSkew(ct.Latency, p); ok {
		dd.CritSkewNS = skew
	}
	if p.Endpoint != nil {
		dd.SetupNS = p.Endpoint.Master.Setup
	}
	dd.CellDelayNS = p.CellDelaySum()
	dd.WireDelayNS = p.WireDelaySum()
	dd.PathDelayNS = p.Delay()
	dd.PathWLum = p.Wirelength()
	dd.TopWLum = p.WirelengthOnTier(tech.TierTop)
	dd.BottomWLum = p.WirelengthOnTier(tech.TierBottom)
	dd.PathCells = len(p.Stages)
	dd.PathMIVs = p.TierCrossings()
	dd.TopCells = p.CellsOnTier(tech.TierTop)
	dd.BottomCells = p.CellsOnTier(tech.TierBottom)
	dd.TopCellDelayNS = p.CellDelayOnTier(tech.TierTop)
	dd.BotCellDelayNS = p.CellDelayOnTier(tech.TierBottom)
	if dd.TopCells > 0 {
		dd.AvgTopDelayNS = dd.TopCellDelayNS / float64(dd.TopCells)
	}
	if dd.BottomCells > 0 {
		dd.AvgBotDelayNS = dd.BotCellDelayNS / float64(dd.BottomCells)
	}
	return dd, nil
}

func sq(x float64) float64 { return x * x }

// netLatency estimates the mean driver→sink wire latency of a net from
// the extraction (Elmore per sink), in ns.
func netLatency(r *Result, n *netlist.Net) float64 {
	rc := r.Router.Extract(n)
	if len(rc.SinkR) == 0 {
		return 0
	}
	sum := 0.0
	cnt := 0
	for i, s := range n.Sinks {
		sum += tech.RCps(rc.SinkR[i], rc.SinkCapShare[i]+s.Spec().Cap)
		cnt++
	}
	for pi, p := range n.SinkPorts {
		ri := len(n.Sinks) + pi
		sum += tech.RCps(rc.SinkR[ri], rc.SinkCapShare[ri]+p.Cap)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// pathSkew returns capture-latency − launch-latency for a path whose
// launch stage and endpoint are registered.
func pathSkew(lat map[int]float64, p sta.Path) (float64, bool) {
	if p.Endpoint == nil || len(p.Stages) == 0 {
		return 0, false
	}
	launch := p.Stages[0].Inst
	if !launch.Master.Function.IsSequential() && !launch.Master.Function.IsMacro() {
		return 0, false
	}
	return lat[p.Endpoint.ID] - lat[launch.ID], true
}
