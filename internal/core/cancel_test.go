package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/flow"
)

// gate on goroutine counts: wait for any stragglers from earlier tests to
// settle, then return the baseline.
func goroutineBaseline(t *testing.T) int {
	t.Helper()
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		n := runtime.NumGoroutine()
		if n <= base {
			base = n
		}
		time.Sleep(2 * time.Millisecond)
	}
	return base
}

func checkNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 { // allow runtime jitter
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d running, baseline %d", n, base)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A flow started with an already-cancelled context must fail before doing
// any work, with the failure attributed to a pipeline stage.
func TestRunAlreadyCancelled(t *testing.T) {
	src := genSrc(t, "aes", 0.02)
	base := goroutineBaseline(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, cfg := range []ConfigName{Config2D12T, ConfigM3D12T, ConfigHetero} {
		start := time.Now()
		r, err := Run(ctx, src, cfg, DefaultOptions(1.0))
		if r != nil || err == nil {
			t.Fatalf("%s: cancelled run returned (%v, %v)", cfg, r, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not wrap context.Canceled", cfg, err)
		}
		var fe *flow.Error
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error %T is not a *flow.Error: %v", cfg, err, err)
		}
		if fe.Design != src.Name || fe.Config != string(cfg) || fe.Stage == "" {
			t.Errorf("%s: incomplete attribution: %+v", cfg, fe)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("%s: cancelled run took %v, want prompt return", cfg, d)
		}
	}
	checkNoLeak(t, base)
}

// An expired deadline must abort the flow mid-pipeline with a
// DeadlineExceeded-wrapping stage error, well before the flow would have
// finished on its own.
func TestRunDeadlineExceeded(t *testing.T) {
	src := genSrc(t, "cpu", 0.05)
	base := goroutineBaseline(t)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done() // make the expiry deterministic

	start := time.Now()
	_, err := Run(ctx, src, ConfigHetero, DefaultOptions(1.0))
	if err == nil {
		t.Fatal("expired deadline: run succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	var fe *flow.Error
	if !errors.As(err, &fe) {
		t.Fatalf("error %T is not a *flow.Error: %v", err, err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("aborted run took %v, want prompt return", d)
	}
	checkNoLeak(t, base)
}

// FindFmax must propagate cancellation from its probe runs.
func TestFindFmaxCancelled(t *testing.T) {
	src := genSrc(t, "aes", 0.02)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := FindFmax(ctx, src, Config2D12T, DefaultFmaxOptions())
	if err == nil {
		t.Fatal("cancelled fmax search succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// Cancelling mid-run (not before) must also abort: start a flow, cancel
// shortly after, and require it to return a stage-attributed cancellation
// error rather than running to completion.
func TestRunCancelMidFlight(t *testing.T) {
	src := genSrc(t, "cpu", 0.05)
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, src, ConfigHetero, DefaultOptions(1.0))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if err == nil {
			// The flow legitimately finished before the cancel landed;
			// nothing to assert at this scale.
			return
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
		var fe *flow.Error
		if !errors.As(err, &fe) {
			t.Errorf("error %T is not a *flow.Error: %v", err, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled flow did not return within 30s")
	}
}

// Result.Stages must record one metric per executed pipeline stage, in
// order, for every flow kind.
func TestRunStageMetrics(t *testing.T) {
	src := genSrc(t, "aes", 0.02)
	want := map[ConfigName][]string{
		Config2D12T: {StageMap, StageSynth, StagePlace, StageLegalize, StageCTS, StageRepair, StagePower, StageSignoff},
		ConfigM3D12T: {StageMap, StageSynth, StageMacros, StagePlace, StagePartition, StageLegalize,
			StageCTS, StageRepair, StagePower, StageSignoff},
		ConfigHetero: {StageMap, StageSynth, StageMacros, StagePlace, StageTimingPartition, StagePartition,
			StageRetarget, StageShifters, StageLegalize, StageCTS, StageRepair, StageECO,
			StageFinalRepair, StagePower, StageSignoff},
	}
	for cfg, stages := range want {
		r, err := Run(context.Background(), src, cfg, DefaultOptions(1.0))
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if len(r.Stages) != len(stages) {
			t.Fatalf("%s: %d stage metrics, want %d: %+v", cfg, len(r.Stages), len(stages), r.Stages)
		}
		for i, m := range r.Stages {
			if m.Name != stages[i] {
				t.Errorf("%s: stage[%d] = %q, want %q", cfg, i, m.Name, stages[i])
			}
			if m.Wall < 0 {
				t.Errorf("%s: stage %s negative wall time %v", cfg, m.Name, m.Wall)
			}
		}
		if last := r.Stages[len(r.Stages)-1]; last.Cells == 0 {
			t.Errorf("%s: final stage recorded 0 cells", cfg)
		}
	}
}
