package core

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/cts"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/tech"
)

// cloneMapped clones src with every standard cell remapped onto lib
// (macros pass through unchanged) — "the netlists are synthesized in the
// respective technology nodes" (Sec. IV-A2).
func cloneMapped(src *netlist.Design, lib *cell.Library, name string) (*netlist.Design, error) {
	return src.CloneInto(name, func(m *cell.Master) (*cell.Master, error) {
		if m.Function.IsMacro() {
			return m, nil
		}
		return lib.Equivalent(m)
	})
}

// assignMacroTiers balances hard macros across the two dies by area
// (largest first onto the lighter die) and returns the assignment as a
// preassign map for the tier partitioner.
func assignMacroTiers(d *netlist.Design) map[*netlist.Instance]tech.Tier {
	var macros []*netlist.Instance
	for _, inst := range d.Instances {
		if inst.Master.Function.IsMacro() {
			macros = append(macros, inst)
		}
	}
	sort.Slice(macros, func(i, j int) bool {
		ai, aj := macros[i].Master.Area(), macros[j].Master.Area()
		if ai != aj {
			return ai > aj
		}
		return macros[i].Name < macros[j].Name
	})
	var area [2]float64
	out := make(map[*netlist.Instance]tech.Tier, len(macros))
	for _, m := range macros {
		t := tech.TierBottom
		if area[1] < area[0] {
			t = tech.TierTop
		}
		m.SetTier(t)
		area[t] += m.Master.Area()
		out[m] = t
	}
	return out
}

// rowHeights returns the per-tier legalization row heights of a library
// pair.
func rowHeights(libs [2]*cell.Library) [2]float64 {
	var h [2]float64
	h[0] = libs[0].Variant.CellHeight
	if libs[1] != nil {
		h[1] = libs[1].Variant.CellHeight
	}
	return h
}

// placeWithCongestionRetry floorplans and globally places the design,
// then checks routing congestion; a heavily overflowing design (the
// paper's wire-dominant LDPC) is re-floorplanned at reduced utilization
// and re-placed — "the routing feasibility drives the optimization"
// (Sec. IV-B2), which is why LDPC's density lands near 64 % while the
// cell-dominant designs stay at their 70 %+ targets.
//
// Every retry is counted under StatCongestionRetries. A design still
// overflowing after the standard three attempts gets one extra
// relaxation under the flow's Degraded flag (StatDegradeUtil) — a worse
// floorplan beats an aborted flow, but the result is marked so the
// resilience report surfaces it.
func placeWithCongestionRetry(fc *flow.Context, d *netlist.Design, opt Options, tiers int, areaScale float64) (*place.Floorplan, error) {
	router := route.New()
	util := opt.TargetUtil
	var fp *place.Floorplan
	const attempts = 3
	for attempt := 0; attempt <= attempts; attempt++ {
		if attempt > 0 {
			fc.AddStat(flow.StatCongestionRetries, 1)
		}
		var err error
		fp, err = place.NewFloorplan(d, place.Options{
			TargetUtil:  util,
			AspectRatio: 1,
			Tiers:       tiers,
			AreaScale:   areaScale,
		})
		if err != nil {
			return nil, err
		}
		gopt := place.DefaultGlobalOptions()
		gopt.Workers = opt.FlowWorkers
		gopt.Par = &par.Stats{}
		if err := place.Global(d, fp.Core, gopt); err != nil {
			return nil, err
		}
		fc.AddStat(flow.StatParBatches, gopt.Par.Batches)
		fc.AddStat(flow.StatParTasks, gopt.Par.Tasks)
		cm, err := router.Congestion(d, fp.Outline, 16, 16)
		if err != nil {
			return nil, err
		}
		// Per-tier wiring shares the same outline in 3-D, so demand is
		// effectively halved per tier's stack.
		overflow := cm.OverflowFraction()
		if tiers == 2 {
			overflow = overflowAtHalfDemand(cm)
		}
		if overflow <= 0.10 {
			return fp, nil
		}
		if attempt == attempts-1 {
			// Standard budget exhausted: take the one degraded attempt.
			fc.AddStat(flow.StatDegradeUtil, 1)
			fc.MarkDegraded(flow.DegradeUtil)
		}
		util *= 0.82 // relax utilization and retry
	}
	return fp, nil
}

// bottomCapacityFrac returns the largest bottom-die share of movable
// cell area a tier partition may target such that the bottom tier still
// fits its legalization rows (with a fragmentation margin). The FM
// balance fraction counts exactly the movable, non-macro cells — the
// same population the rows must host.
func bottomCapacityFrac(d *netlist.Design, fp *place.Floorplan, bottomLib *cell.Library) float64 {
	rowH := bottomLib.Variant.CellHeight
	rows := float64(int(fp.Core.H() / rowH))
	capArea := fp.Core.W() * rows * rowH * 0.97
	var movable float64
	for _, inst := range d.Instances {
		if inst.Fixed || inst.Master.Function.IsMacro() {
			continue
		}
		movable += inst.Master.Area()
	}
	if movable <= 0 {
		return 1
	}
	return capArea / movable
}

// overflowAtHalfDemand evaluates the overflow fraction with per-bin
// demand halved (two routing stacks share the 3-D footprint).
func overflowAtHalfDemand(cm *route.CongestionMap) float64 {
	over := 0
	for i := range cm.DemandH.Vals {
		if cm.DemandH.Vals[i]/2 > cm.SupplyH || cm.DemandV.Vals[i]/2 > cm.SupplyV {
			over++
		}
	}
	return float64(over) / float64(cm.Grid.Bins())
}

// staConfig is the single constructor for every flow timing analysis:
// sign-off defaults at the given period, extraction through ex, the
// clock model, and the boundary-derate switch. Both the optimization
// environments and the pre-partition criticality analysis build their
// configuration here so the two can never drift apart.
func staConfig(period float64, ex route.Extractor, latency func(*netlist.Instance) float64, hetero bool, workers int) sta.Config {
	cfg := sta.DefaultConfig(period)
	cfg.Router = ex
	cfg.Latency = latency
	cfg.Hetero = hetero
	cfg.Workers = workers
	return cfg
}

// timingEnv bundles everything needed to (re-)analyze a design's timing
// during optimization. It owns one persistent sta.Timer per flow: every
// analyze call is an incremental update of the same session, sharing one
// revision-keyed extraction cache with the power analysis.
type timingEnv struct {
	// fc is the run's pipeline context; the repair loops poll it so a
	// cancelled run aborts between optimization rounds, not only at
	// stage boundaries, and the timer reports its engine counters into
	// the current stage's metric. nil = no cancellation, no stats.
	fc      *flow.Context
	d       *netlist.Design
	libs    [2]*cell.Library
	ex      route.Extractor
	cache   *route.Cache // ex when extraction is cached, nil otherwise
	period  float64
	latency func(*netlist.Instance) float64
	hetero  bool
	// forceFull pins the timer to full recomputes (the -timer-stats
	// kill switch for incremental updates; also set by the degradation
	// path once a retained view has diverged).
	forceFull bool
	// audit verifies the extraction cache against fresh extraction before
	// every analysis — the detection side of cache-corruption faults.
	audit bool
	// workers bounds the full pass's intra-analysis parallelism
	// (Options.FlowWorkers); results are identical at any value.
	workers int

	timer *sta.Timer
	// lastTS/lastCS snapshot the cumulative engine counters at the last
	// analyze, so each call attributes only its delta to the stage that
	// ran it.
	lastTS sta.TimerStats
	lastCS route.CacheStats
}

func (e *timingEnv) analyze() (*sta.Result, error) {
	if e.audit && e.cache != nil {
		// Audit before the timer consumes the cache: divergence is caught
		// ahead of any sizing decision, so the degraded re-run starts from
		// an untainted design state.
		if err := e.cache.Audit(); err != nil {
			return nil, fmt.Errorf("%w: %w", sta.ErrDiverged, err)
		}
	}
	if e.timer == nil {
		cfg := staConfig(e.period, e.ex, e.latency, e.hetero, e.workers)
		cfg.ForceFull = e.forceFull
		t, err := sta.NewTimer(e.d, cfg)
		if err != nil {
			return nil, err
		}
		e.timer = t
	}
	res, err := e.timer.Update()
	if err != nil {
		return nil, err
	}
	e.reportStats()
	return res, nil
}

// reportStats attributes the engine work since the last analyze to the
// currently running stage.
func (e *timingEnv) reportStats() {
	if e.fc == nil || e.timer == nil {
		return
	}
	ts := e.timer.Stats()
	e.fc.AddStat(flow.StatSTAFull, ts.FullUpdates-e.lastTS.FullUpdates)
	e.fc.AddStat(flow.StatSTAIncr, ts.IncrementalUpdates-e.lastTS.IncrementalUpdates)
	e.fc.AddStat(flow.StatSTANodes, ts.NodesReevaluated-e.lastTS.NodesReevaluated)
	e.fc.AddStat(flow.StatParBatches, ts.ParBatches-e.lastTS.ParBatches)
	e.fc.AddStat(flow.StatParTasks, ts.ParTasks-e.lastTS.ParTasks)
	e.lastTS = ts
	if e.cache != nil {
		cs := e.cache.Stats()
		e.fc.AddStat(flow.StatRCHits, cs.Hits-e.lastCS.Hits)
		e.fc.AddStat(flow.StatRCMisses, cs.Misses-e.lastCS.Misses)
		e.lastCS = cs
	}
}

// close detaches the persistent timer from the design's journal. The
// retained results stay readable.
func (e *timingEnv) close() {
	if e.timer != nil {
		e.timer.Close()
		e.timer = nil
	}
}

// libOf returns the library an instance sizes within (by its tier for
// hetero designs, the bottom library otherwise).
func (e *timingEnv) libOf(inst *netlist.Instance) *cell.Library {
	if e.libs[1] != nil && inst.Master.Track == e.libs[1].Variant.Track {
		return e.libs[1]
	}
	return e.libs[0]
}

// preSizeForClock is the synthesis-stage timing optimization: before the
// floorplan is frozen, cells on failing paths are upsized against an
// ideal-wire timing estimate at the target clock. Because the floorplan
// is sized *after* this pass at constant utilization, a slow library
// chasing an unreachable target grows the die — the 9-track
// "over-correction in the synthesis stage" the paper reports
// (Sec. IV-B2).
func preSizeForClock(fc *flow.Context, d *netlist.Design, libs [2]*cell.Library, period float64, rounds int, forceFull bool, workers int) error {
	// Pre-placement timing needs a wire-load model: 2.5 fF of estimated
	// wire per sink stands in for the not-yet-placed interconnect, so
	// the sizes baked into the floorplan survive real extraction.
	wlmRouter := route.New()
	wlmRouter.WLMPerSinkFF = 2.5
	cache := route.NewCache(wlmRouter, d)
	e := &timingEnv{fc: fc, d: d, libs: libs, ex: cache, cache: cache, period: period, forceFull: forceFull, workers: workers}
	defer e.close()
	// Synthesis aims for margin, not bare closure: cells within 3 % of
	// the period get upsized too, which is what makes a slow library
	// chasing a fast target balloon in area.
	margin := 0.03 * period
	for r := 0; r < rounds; r++ {
		if err := fc.Canceled(); err != nil {
			return err
		}
		res, err := e.analyze()
		if err != nil {
			return err
		}
		if res.WNS >= margin {
			return nil
		}
		slack := res.SlackMap()
		changed := 0
		for _, inst := range d.Instances {
			if inst.Master.Function.IsMacro() || inst.Master.Function.IsClockCell() {
				continue
			}
			if slack[inst.ID] >= margin {
				continue
			}
			up := e.libOf(inst).NextDriveUp(inst.Master)
			if up == nil {
				continue
			}
			if err := d.ReplaceMaster(inst, up); err != nil {
				return fmt.Errorf("core: presize %s: %w", inst.Name, err)
			}
			changed++
		}
		if changed == 0 {
			return nil
		}
	}
	return nil
}

// repairTiming runs the post-placement timing-driven sizing loop: upsize
// every cell with negative worst slack one drive step per round,
// re-legalize, re-analyze. Upsizing stops per tier when the core fills to
// the capacity guard, mirroring a real engine's density limit.
func repairTiming(e *timingEnv, fp *place.Floorplan, rounds int) (*sta.Result, error) {
	return repairTimingBudget(e, fp, rounds, 0.93)
}

// repairTimingBudget is repairTiming with an explicit per-tier capacity
// fraction; the hetero flow runs its pre-ECO pass with a tighter budget
// so the repartitioner keeps headroom on the fast die.
func repairTimingBudget(e *timingEnv, fp *place.Floorplan, rounds int, capFrac float64) (*sta.Result, error) {
	res, err := e.analyze()
	if err != nil {
		return nil, err
	}
	// maxTran is the max-transition DRC limit: drivers whose output slew
	// exceeds it get upsized even off the critical path, because a slow
	// edge poisons every downstream stage's delay (worst-slew
	// propagation). Commercial flows fix these violations before timing.
	const maxTran = 0.060
	// Per-tier capacity from the actual row grid (row quantization makes
	// this slightly less than the raw core area).
	heights := rowHeights(e.libs)
	var budget [2]float64
	for t := 0; t < 2; t++ {
		h := heights[t]
		if h <= 0 {
			h = heights[0]
		}
		rows := float64(int(fp.Core.H() / h))
		budget[t] = fp.Core.W() * rows * h * capFrac
	}
	for r := 0; r < rounds; r++ {
		if err := e.fc.Canceled(); err != nil {
			return nil, err
		}
		// Current movable area per tier.
		var used [2]float64
		for _, inst := range e.d.Instances {
			if inst.Fixed || inst.Master.Function.IsMacro() {
				continue
			}
			used[inst.Tier] += inst.Master.Area()
		}
		slack := res.SlackMap()
		changed := 0
		for _, inst := range e.d.Instances {
			if inst.Master.Function.IsMacro() || inst.Master.Function.IsClockCell() {
				continue
			}
			if slack[inst.ID] >= 0 && res.OutputSlew(inst) <= maxTran {
				continue
			}
			up := e.libOf(inst).NextDriveUp(inst.Master)
			if up == nil {
				// Already at max drive: a slew violator gets its load
				// split with a buffer instead (the far half of the
				// sinks moves behind it) — post-route buffering, the
				// other half of commercial DRC fixing.
				if res.OutputSlew(inst) > maxTran {
					bufArea := e.libOf(inst).Strongest(cell.FuncBuf).Area()
					if used[inst.Tier]+bufArea > budget[inst.Tier] {
						continue
					}
					added, err := splitLoad(e, inst)
					if err != nil {
						return nil, err
					}
					if added {
						used[inst.Tier] += bufArea
						changed++
					}
				}
				continue
			}
			grow := up.Area() - inst.Master.Area()
			if used[inst.Tier]+grow > budget[inst.Tier] {
				continue // density guard: no room on this die
			}
			if err := e.d.ReplaceMaster(inst, up); err != nil {
				return nil, fmt.Errorf("core: repair %s: %w", inst.Name, err)
			}
			used[inst.Tier] += grow
			changed++
		}
		if changed == 0 {
			break
		}
		if _, err := place.LegalizeTiers(e.d, fp.Core, rowHeights(e.libs), fp.Tiers); err != nil {
			return nil, err
		}
		if res, err = e.analyze(); err != nil {
			return nil, err
		}
		if res.WNS >= 0 && r >= 1 {
			break // timing met and DRCs had one cleanup round
		}
	}
	return res, nil
}

// splitLoad inserts a buffer on inst's output net, moving the farther
// half of the sinks behind it. No-op for small fanouts or nets that
// cannot legally split.
func splitLoad(e *timingEnv, inst *netlist.Instance) (bool, error) {
	out := e.d.OutputNet(inst)
	if out == nil || out.IsClock || len(out.Sinks) < 4 {
		return false, nil
	}
	// Sort sinks by distance from the driver; the far half moves.
	sinks := append([]netlist.PinRef{}, out.Sinks...)
	sort.Slice(sinks, func(i, j int) bool {
		di := inst.Loc.ManhattanDist(sinks[i].Loc())
		dj := inst.Loc.ManhattanDist(sinks[j].Loc())
		if di != dj {
			return di < dj
		}
		return sinks[i].Inst.ID < sinks[j].Inst.ID
	})
	far := sinks[len(sinks)/2:]
	lib := e.libOf(inst)
	buf := lib.Strongest(cell.FuncBuf)
	name := fmt.Sprintf("drc_%s", inst.Name)
	if e.d.Instance(name) != nil {
		name = fmt.Sprintf("drc%d_%s", len(e.d.Instances), inst.Name)
	}
	nb, _, err := e.d.InsertBuffer(out, far, buf, name)
	if err != nil {
		return false, fmt.Errorf("core: splitLoad %s: %w", inst.Name, err)
	}
	nb.SetTier(inst.Tier)
	return true, nil
}

// recoverPower downsizes cells whose worst slack comfortably clears the
// period margin, trading unneeded speed for power ("when the timing
// target is not set tightly, the tool starts optimizing for power",
// Sec. IV-A2). Returns the final timing result.
func recoverPower(e *timingEnv, fp *place.Floorplan, res *sta.Result) (*sta.Result, error) {
	slack := res.SlackMap()
	margin := 0.25 * e.period
	changed := 0
	for _, inst := range e.d.Instances {
		f := inst.Master.Function
		if f.IsMacro() || f.IsClockCell() || inst.Master.Drive == 1 {
			continue
		}
		if slack[inst.ID] < margin {
			continue
		}
		lib := e.libOf(inst)
		ms := lib.ByFunction(inst.Master.Function)
		// Step down one drive.
		var down *cell.Master
		for i, m := range ms {
			if m.Drive == inst.Master.Drive && i > 0 {
				down = ms[i-1]
				break
			}
		}
		if down == nil {
			continue
		}
		if err := e.d.ReplaceMaster(inst, down); err != nil {
			return nil, err
		}
		changed++
	}
	if changed == 0 {
		return res, nil
	}
	if _, err := place.LegalizeTiers(e.d, fp.Core, rowHeights(e.libs), fp.Tiers); err != nil {
		return nil, err
	}
	return e.analyze()
}

// collect assembles the PPAC record from the finished implementation.
// ex is the extraction the power analysis reads wire loads through —
// the flow's shared cache, so sign-off power reuses the timing engine's
// warm entries.
func collect(d *netlist.Design, cfg ConfigName, opt Options, fp *place.Floorplan,
	ct *cts.Result, st *sta.Result, router *route.Router, ex route.Extractor, notes string, cut int) (*PPAC, *power.Breakdown, error) {

	pcfg := power.DefaultConfig(opt.ClockGHz)
	pcfg.Router = ex
	if ex == nil {
		pcfg.Router = router
	}
	pcfg.Hetero = cfg == ConfigHetero
	pw, err := power.Analyze(d, pcfg)
	if err != nil {
		return nil, nil, err
	}

	footprintMM2 := fp.Outline.Area() / 1e6
	sig, clk := router.Wirelength(d)

	p := &PPAC{
		Design:       d.Name,
		Config:       cfg,
		FreqGHz:      opt.ClockGHz,
		FootprintMM2: footprintMM2,
		SiAreaMM2:    footprintMM2 * float64(fp.Tiers),
		ChipWidthUM:  fp.Outline.W(),
		Density:      place.Density(d, fp),
		WLm:          (sig + clk) / 1e6,
		PowerMW:      pw.Total / 1000,
		LeakageMW:    pw.Leakage / 1000,
		ClockPowerMW: pw.Clock / 1000,
		WNS:          st.WNS,
		TNS:          st.TNS,
		EffDelayNS:   st.EffectiveDelay(),
		Clock:        ct,
		CutSize:      cut,
		Refinement:   notes,
		Cells:        d.ComputeStats().Cells,
	}
	if fp.Tiers == 2 {
		p.MIVs = router.TotalMIVs(d)
	}

	var dieCost float64
	if fp.Tiers == 1 {
		dieCost, err = opt.Cost.DieCost2D(footprintMM2)
	} else {
		dieCost, err = opt.Cost.DieCost3D(footprintMM2)
	}
	if err != nil {
		return nil, nil, err
	}
	p.DieCostMicroC = dieCost * 1e6
	p.CostPerCm2 = dieCost * 1e6 / (p.SiAreaMM2 / 100)
	p.PDPpJ = p.PowerMW * p.EffDelayNS
	// PPC uses the *achieved* frequency: the target when timing is met,
	// 1/effective-delay when it fails (a design missing its clock only
	// delivers the performance its worst path allows).
	achieved := p.FreqGHz
	if p.WNS < 0 {
		achieved = 1 / p.EffDelayNS
	}
	p.PPC = achieved / (p.PowerMW / 1000 * p.DieCostMicroC)
	return p, pw, nil
}
