package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/check"
	"repro/internal/cts"
	"repro/internal/db"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/tech"
)

// This file is the flow side of the binary design database: assembling
// a designDB from mid-flow state at a save boundary, and overlaying a
// decoded one back onto a fresh flowState so the remaining stages run
// byte-identical to an uninterrupted flow (DESIGN.md §6.7).

// ErrOptionsMismatch reports a LoadDesign whose file was saved under
// different flow options. It is deliberately NOT db.ErrCorrupt: the
// file is fine, the caller's options are not.
var ErrOptionsMismatch = errors.New("core: design database was saved under different flow options — rerun with the original options or re-save")

// Core-owned section tags (the per-layer tags live in internal/db).
const (
	tagMeta   = "META"
	tagStages = "STGS"
	tagPPAC   = "PPAC"
	tagPower  = "POWR"
)

// saveBoundaries are the stage boundaries a design may be saved at and
// resumed from. They are exactly the stages present in all three flows
// whose downstream state is fully captured by the database sections;
// intermediate stages (synth, partition, eco, ...) save nothing a
// later boundary does not supersede.
var saveBoundaries = []string{StageMap, StagePlace, StageLegalize, StageCTS, StageSignoff}

func boundaryOK(stage string) bool {
	for _, b := range saveBoundaries {
		if b == stage {
			return true
		}
	}
	return false
}

// SaveBoundaries returns the stage boundaries a design database may be
// saved at — and therefore the boundaries a served session may open at.
// The returned slice is a copy, in flow order.
func SaveBoundaries() []string {
	return append([]string(nil), saveBoundaries...)
}

// parseSaveAfter splits and validates Options.SaveAfter ("" defaults to
// the post-place boundary).
func parseSaveAfter(list string) (map[string]bool, error) {
	if list == "" {
		list = StagePlace
	}
	out := make(map[string]bool)
	for _, st := range strings.Split(list, ",") {
		st = strings.TrimSpace(st)
		if st == "" {
			continue
		}
		if !boundaryOK(st) {
			return nil, fmt.Errorf("core: -save-after stage %q is not a save boundary (one of %s)",
				st, strings.Join(saveBoundaries, ", "))
		}
		out[st] = true
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: -save-after lists no stages")
	}
	return out, nil
}

// savePathFor returns the file path for one boundary: the configured
// path as-is for a single-boundary save, with "-<stage>" inserted
// before the extension when several boundaries save in one run.
func savePathFor(path, stage string, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + stage + ext
}

// optionsFingerprint serializes every Options field that shapes the
// design trajectory. Scheduling and observation knobs — FlowWorkers,
// Events, Fault, AuditExtraction, the Save*/Load*/StopAfter paths —
// are deliberately excluded: a snapshot saved at FLOW_WORKERS=1 must
// resume under FLOW_WORKERS=8 (every kernel is byte-identical across
// worker counts).
func optionsFingerprint(opt Options) []byte {
	w := db.NewWriter()
	w.PutF64(opt.ClockGHz)
	w.PutF64(opt.TargetUtil)
	w.PutF64(opt.TimingAreaFrac)
	w.PutI32(int32(opt.RepairRounds))
	w.PutBool(opt.EnableTimingPartition)
	w.PutBool(opt.Enable3DCTS)
	w.PutBool(opt.EnableRepartition)
	w.PutF64(opt.Cost.FEOLFrac)
	w.PutF64(opt.Cost.BEOLFracPerLayer)
	w.PutI32(int32(opt.Cost.SignalLayers))
	w.PutF64(opt.Cost.Alpha)
	w.PutF64(opt.Cost.WaferDiameterMM)
	w.PutF64(opt.Cost.DefectDensity)
	w.PutF64(opt.Cost.WaferYield)
	w.PutF64(opt.Cost.YieldDegradation3D)
	w.PutI64(opt.Seed)
	w.PutBool(opt.TopVariant != nil)
	if v := opt.TopVariant; v != nil {
		w.PutI32(int32(v.Track))
		w.PutF64(v.VDD)
		w.PutF64(v.CellHeight)
		w.PutF64(v.AreaScale)
		w.PutF64(v.DriveRes)
		w.PutF64(v.InputCap)
		w.PutF64(v.IntrinsicDelay)
		w.PutF64(v.LeakagePower)
		w.PutF64(v.InternalEnergy)
		w.PutF64(v.WireCostScale)
	}
	w.PutBool(opt.ForceLevelShifters)
	w.PutBool(opt.ForceFullSTA)
	w.PutString(string(opt.Check))
	w.PutBool(opt.CheckReportOnly)
	return w.Bytes()
}

// preassignPair is one macro/timing-partition pre-assignment in
// exportable form (instance dense ID → tier), kept sorted by ID so the
// encoding is canonical.
type preassignPair struct {
	Inst int32
	Tier tech.Tier
}

// designDB is one decoded (or about-to-be-encoded) design database:
// the sum of every section. Encode and decode share it, which is what
// makes VerifyDesignFile's decode→re-encode→compare meaningful.
type designDB struct {
	design string // source design name
	config string
	stage  string // boundary the file was saved at
	fprint []byte

	snap *netlist.Snapshot
	d    *netlist.Design // materialized from snap during decode

	fp     *place.Floorplan
	ct     *cts.Result
	st     *sta.Snapshot
	routes []route.CacheEntry

	hasChecks bool
	chkState  check.SessionState
	chkReps   []*check.Report

	metrics    []flow.StageMetric
	degraded   []string
	notes      string
	notesExtra string
	// hasPreassign distinguishes "no pre-assignment map yet" from "an
	// empty one" — the macro stage creates the map even on macro-free
	// designs, and later stages write into it unconditionally.
	hasPreassign bool
	preassign    []preassignPair
	tres         *partition.TierResult

	ppac *PPAC
	pw   *power.Breakdown
}

// metaSection is the META section: file identity (design, config,
// saved stage) and the options fingerprint the loader validates.
type metaSection struct{ dd *designDB }

func (s *metaSection) Tag() string { return tagMeta }

func (s *metaSection) Encode(w *db.Writer) error {
	w.PutString(s.dd.design)
	w.PutString(s.dd.config)
	w.PutString(s.dd.stage)
	w.PutBytes(s.dd.fprint)
	return nil
}

func (s *metaSection) Decode(r *db.Reader) error {
	var err error
	if s.dd.design, err = r.String(); err != nil {
		return err
	}
	if s.dd.config, err = r.String(); err != nil {
		return err
	}
	if s.dd.stage, err = r.String(); err != nil {
		return err
	}
	s.dd.fprint, err = r.Bytes()
	return err
}

// netlSection adapts db.NetlistSection to the designDB: decode also
// replays the snapshot into a live design, so sections after NETL in
// file order (CTSR's buffer IDs, STGS's pre-assignments) can resolve
// instances.
type netlSection struct{ dd *designDB }

func (s *netlSection) Tag() string { return db.TagNetlist }

func (s *netlSection) Encode(w *db.Writer) error {
	return (&db.NetlistSection{Snap: s.dd.snap}).Encode(w)
}

func (s *netlSection) Decode(r *db.Reader) error {
	var ns db.NetlistSection
	if err := ns.Decode(r); err != nil {
		return err
	}
	d, err := netlist.ImportState(ns.Snap)
	if err != nil {
		return db.Corruptf("%v", err)
	}
	s.dd.snap = ns.Snap
	s.dd.d = d
	return nil
}

// stagesSection is the STGS section: everything the flow itself owns at
// a boundary — executed stage metrics, degradations, flow notes, tier
// pre-assignments, and the partition summary.
type stagesSection struct{ dd *designDB }

func (s *stagesSection) Tag() string { return tagStages }

func (s *stagesSection) Encode(w *db.Writer) error {
	dd := s.dd
	w.PutU32(uint32(len(dd.metrics)))
	for _, m := range dd.metrics {
		db.PutStageMetric(w, m)
	}
	w.PutU32(uint32(len(dd.degraded)))
	for _, r := range dd.degraded {
		w.PutString(r)
	}
	w.PutString(dd.notes)
	w.PutString(dd.notesExtra)
	w.PutBool(dd.hasPreassign)
	w.PutU32(uint32(len(dd.preassign)))
	for _, p := range dd.preassign {
		w.PutI32(p.Inst)
		w.PutU8(uint8(p.Tier))
	}
	w.PutBool(dd.tres != nil)
	if t := dd.tres; t != nil {
		w.PutI32(int32(t.Cut))
		w.PutF64(t.AreaTop)
		w.PutF64(t.AreaBottom)
		w.PutI32(int32(t.Preassigned))
		w.PutI32(int32(t.MovableCells))
	}
	return nil
}

func (s *stagesSection) Decode(r *db.Reader) error {
	dd := s.dd
	if dd.d == nil {
		return db.Corruptf("stage section before netlist section")
	}
	nm, err := r.Count(13)
	if err != nil {
		return err
	}
	dd.metrics = nil
	for i := 0; i < nm; i++ {
		m, err := db.ReadStageMetric(r)
		if err != nil {
			return err
		}
		dd.metrics = append(dd.metrics, m)
	}
	nd, err := r.Count(4)
	if err != nil {
		return err
	}
	dd.degraded = nil
	for i := 0; i < nd; i++ {
		reason, err := r.String()
		if err != nil {
			return err
		}
		dd.degraded = append(dd.degraded, reason)
	}
	if dd.notes, err = r.String(); err != nil {
		return err
	}
	if dd.notesExtra, err = r.String(); err != nil {
		return err
	}
	if dd.hasPreassign, err = r.Bool(); err != nil {
		return err
	}
	np, err := r.Count(5)
	if err != nil {
		return err
	}
	dd.preassign = nil
	for i := 0; i < np; i++ {
		var p preassignPair
		if p.Inst, err = r.I32(); err != nil {
			return err
		}
		if p.Inst < 0 || int(p.Inst) >= len(dd.d.Instances) {
			return db.Corruptf("pre-assignment references instance %d of %d", p.Inst, len(dd.d.Instances))
		}
		t, err := r.U8()
		if err != nil {
			return err
		}
		if t > uint8(tech.TierTop) {
			return db.Corruptf("pre-assignment tier %d", t)
		}
		p.Tier = tech.Tier(t)
		dd.preassign = append(dd.preassign, p)
	}
	hasTres, err := r.Bool()
	if err != nil {
		return err
	}
	dd.tres = nil
	if hasTres {
		t := &partition.TierResult{}
		var v int32
		if v, err = r.I32(); err != nil {
			return err
		}
		t.Cut = int(v)
		if t.AreaTop, err = r.F64(); err != nil {
			return err
		}
		if t.AreaBottom, err = r.F64(); err != nil {
			return err
		}
		if v, err = r.I32(); err != nil {
			return err
		}
		t.Preassigned = int(v)
		if v, err = r.I32(); err != nil {
			return err
		}
		t.MovableCells = int(v)
		dd.tres = t
	}
	return nil
}

// PutPPAC writes a PPAC record (minus its Clock pointer, which the CTSR
// section round-trips; the loader re-points it). Exported because the
// binary evaluation journal and the save/load parity tests byte-compare
// PPAC records through this exact encoding.
func PutPPAC(w *db.Writer, p *PPAC) {
	w.PutString(p.Design)
	w.PutString(string(p.Config))
	w.PutF64(p.FreqGHz)
	w.PutF64(p.FootprintMM2)
	w.PutF64(p.SiAreaMM2)
	w.PutF64(p.ChipWidthUM)
	w.PutF64(p.Density)
	w.PutF64(p.WLm)
	w.PutI32(int32(p.MIVs))
	w.PutF64(p.PowerMW)
	w.PutF64(p.LeakageMW)
	w.PutF64(p.ClockPowerMW)
	w.PutF64(p.WNS)
	w.PutF64(p.TNS)
	w.PutF64(p.EffDelayNS)
	w.PutF64(p.PDPpJ)
	w.PutF64(p.DieCostMicroC)
	w.PutF64(p.CostPerCm2)
	w.PutF64(p.PPC)
	w.PutI32(int32(p.Cells))
	w.PutI32(int32(p.CutSize))
	w.PutString(p.Refinement)
}

// ReadPPAC reads a PPAC record written by PutPPAC.
func ReadPPAC(r *db.Reader) (*PPAC, error) {
	p := &PPAC{}
	var err error
	if p.Design, err = r.String(); err != nil {
		return nil, err
	}
	cfg, err := r.String()
	if err != nil {
		return nil, err
	}
	p.Config = ConfigName(cfg)
	if p.FreqGHz, err = r.F64(); err != nil {
		return nil, err
	}
	if p.FootprintMM2, err = r.F64(); err != nil {
		return nil, err
	}
	if p.SiAreaMM2, err = r.F64(); err != nil {
		return nil, err
	}
	if p.ChipWidthUM, err = r.F64(); err != nil {
		return nil, err
	}
	if p.Density, err = r.F64(); err != nil {
		return nil, err
	}
	if p.WLm, err = r.F64(); err != nil {
		return nil, err
	}
	var v int32
	if v, err = r.I32(); err != nil {
		return nil, err
	}
	p.MIVs = int(v)
	if p.PowerMW, err = r.F64(); err != nil {
		return nil, err
	}
	if p.LeakageMW, err = r.F64(); err != nil {
		return nil, err
	}
	if p.ClockPowerMW, err = r.F64(); err != nil {
		return nil, err
	}
	if p.WNS, err = r.F64(); err != nil {
		return nil, err
	}
	if p.TNS, err = r.F64(); err != nil {
		return nil, err
	}
	if p.EffDelayNS, err = r.F64(); err != nil {
		return nil, err
	}
	if p.PDPpJ, err = r.F64(); err != nil {
		return nil, err
	}
	if p.DieCostMicroC, err = r.F64(); err != nil {
		return nil, err
	}
	if p.CostPerCm2, err = r.F64(); err != nil {
		return nil, err
	}
	if p.PPC, err = r.F64(); err != nil {
		return nil, err
	}
	if v, err = r.I32(); err != nil {
		return nil, err
	}
	p.Cells = int(v)
	if v, err = r.I32(); err != nil {
		return nil, err
	}
	p.CutSize = int(v)
	p.Refinement, err = r.String()
	return p, err
}

// ppacSection is the PPAC section (present only for signoff saves).
type ppacSection struct{ dd *designDB }

func (s *ppacSection) Tag() string { return tagPPAC }

func (s *ppacSection) Encode(w *db.Writer) error {
	PutPPAC(w, s.dd.ppac)
	return nil
}

func (s *ppacSection) Decode(r *db.Reader) error {
	p, err := ReadPPAC(r)
	if err != nil {
		return err
	}
	s.dd.ppac = p
	return nil
}

// powerSection is the POWR section: the signoff power breakdown.
type powerSection struct{ dd *designDB }

func (s *powerSection) Tag() string { return tagPower }

func (s *powerSection) Encode(w *db.Writer) error {
	pw := s.dd.pw
	w.PutF64(pw.Switching)
	w.PutF64(pw.Internal)
	w.PutF64(pw.Leakage)
	w.PutF64(pw.Clock)
	w.PutF64(pw.Total)
	w.PutF64(pw.ByTier[0])
	w.PutF64(pw.ByTier[1])
	w.PutF64s(pw.NetSwitching)
	w.PutF64s(pw.PerInstance)
	return nil
}

func (s *powerSection) Decode(r *db.Reader) error {
	pw := &power.Breakdown{}
	var err error
	if pw.Switching, err = r.F64(); err != nil {
		return err
	}
	if pw.Internal, err = r.F64(); err != nil {
		return err
	}
	if pw.Leakage, err = r.F64(); err != nil {
		return err
	}
	if pw.Clock, err = r.F64(); err != nil {
		return err
	}
	if pw.Total, err = r.F64(); err != nil {
		return err
	}
	if pw.ByTier[0], err = r.F64(); err != nil {
		return err
	}
	if pw.ByTier[1], err = r.F64(); err != nil {
		return err
	}
	if pw.NetSwitching, err = r.F64s(); err != nil {
		return err
	}
	pw.PerInstance, err = r.F64s()
	if err != nil {
		return err
	}
	s.dd.pw = pw
	return nil
}

// sections returns the file's section list in canonical order —
// optional sections appear exactly when their state exists, so encode
// after decode reproduces the original file byte for byte.
func (dd *designDB) sections() []db.Section {
	secs := []db.Section{&metaSection{dd}, &netlSection{dd}}
	if dd.fp != nil {
		secs = append(secs, &db.FloorplanSection{FP: dd.fp})
	}
	if dd.ct != nil {
		secs = append(secs, &db.CTSSection{D: dd.d, Res: dd.ct})
	}
	if dd.st != nil {
		secs = append(secs, &db.STASection{Snap: dd.st})
	}
	if dd.routes != nil {
		secs = append(secs, &db.RouteSection{Entries: dd.routes})
	}
	if dd.hasChecks {
		secs = append(secs, &db.ChecksSection{State: dd.chkState, Reports: dd.chkReps})
	}
	secs = append(secs, &stagesSection{dd})
	if dd.ppac != nil {
		secs = append(secs, &ppacSection{dd})
	}
	if dd.pw != nil {
		secs = append(secs, &powerSection{dd})
	}
	return secs
}

// encodeDesignDB serializes a designDB into a complete file image.
func encodeDesignDB(dd *designDB) ([]byte, error) {
	return db.Encode(db.MagicDesign, dd.sections()...)
}

// decodeDesignDB parses a design-database file, replaying the netlist
// into a live design and collecting every other section. Unknown tags
// are skipped (forward compatibility); every decode failure is typed
// db.ErrCorrupt/db.ErrVersion.
func decodeDesignDB(data []byte) (*designDB, error) {
	dd := &designDB{}
	err := db.Decode(data, db.MagicDesign, func(tag string) (db.Section, error) {
		switch tag {
		case tagMeta:
			return &metaSection{dd}, nil
		case db.TagNetlist:
			return &netlSection{dd}, nil
		case db.TagFloorplan:
			return &fpAdapter{dd}, nil
		case db.TagCTS:
			if dd.d == nil {
				return nil, db.Corruptf("clock section before netlist section")
			}
			return &ctsAdapter{dd}, nil
		case db.TagSTA:
			return &staAdapter{dd}, nil
		case db.TagRoute:
			return &routeAdapter{dd}, nil
		case db.TagChecks:
			return &checksAdapter{dd}, nil
		case tagStages:
			return &stagesSection{dd}, nil
		case tagPPAC:
			return &ppacSection{dd}, nil
		case tagPower:
			return &powerSection{dd}, nil
		default:
			return nil, nil // unknown section: skip
		}
	})
	if err != nil {
		return nil, err
	}
	if dd.d == nil {
		return nil, db.Corruptf("design database has no netlist section")
	}
	return dd, nil
}

// The thin adapters below route the db-owned sections' decoded payloads
// into the designDB (their encode sides are built directly in
// sections()).

type fpAdapter struct{ dd *designDB }

func (a *fpAdapter) Tag() string               { return db.TagFloorplan }
func (a *fpAdapter) Encode(w *db.Writer) error { return (&db.FloorplanSection{FP: a.dd.fp}).Encode(w) }
func (a *fpAdapter) Decode(r *db.Reader) error {
	var s db.FloorplanSection
	if err := s.Decode(r); err != nil {
		return err
	}
	a.dd.fp = s.FP
	return nil
}

type ctsAdapter struct{ dd *designDB }

func (a *ctsAdapter) Tag() string { return db.TagCTS }
func (a *ctsAdapter) Encode(w *db.Writer) error {
	return (&db.CTSSection{D: a.dd.d, Res: a.dd.ct}).Encode(w)
}
func (a *ctsAdapter) Decode(r *db.Reader) error {
	s := db.CTSSection{D: a.dd.d}
	if err := s.Decode(r); err != nil {
		return err
	}
	a.dd.ct = s.Res
	return nil
}

type staAdapter struct{ dd *designDB }

func (a *staAdapter) Tag() string               { return db.TagSTA }
func (a *staAdapter) Encode(w *db.Writer) error { return (&db.STASection{Snap: a.dd.st}).Encode(w) }
func (a *staAdapter) Decode(r *db.Reader) error {
	var s db.STASection
	if err := s.Decode(r); err != nil {
		return err
	}
	a.dd.st = s.Snap
	return nil
}

type routeAdapter struct{ dd *designDB }

func (a *routeAdapter) Tag() string { return db.TagRoute }
func (a *routeAdapter) Encode(w *db.Writer) error {
	return (&db.RouteSection{Entries: a.dd.routes}).Encode(w)
}
func (a *routeAdapter) Decode(r *db.Reader) error {
	var s db.RouteSection
	if err := s.Decode(r); err != nil {
		return err
	}
	a.dd.routes = s.Entries
	return nil
}

type checksAdapter struct{ dd *designDB }

func (a *checksAdapter) Tag() string { return db.TagChecks }
func (a *checksAdapter) Encode(w *db.Writer) error {
	return (&db.ChecksSection{State: a.dd.chkState, Reports: a.dd.chkReps}).Encode(w)
}
func (a *checksAdapter) Decode(r *db.Reader) error {
	var s db.ChecksSection
	if err := s.Decode(r); err != nil {
		return err
	}
	a.dd.hasChecks = true
	a.dd.chkState = s.State
	a.dd.chkReps = s.Reports
	return nil
}

// buildDB assembles a designDB from the flow's live state at a save
// boundary. Only state that exists is captured; the section list
// mirrors the flow's progress (a post-place save has no clock tree, a
// pre-signoff save no PPAC).
func (s *flowState) buildDB(fc *flow.Context, stage string) *designDB {
	dd := &designDB{
		design:     s.src.Name,
		config:     string(s.cfg),
		stage:      stage,
		fprint:     optionsFingerprint(s.opt),
		snap:       s.d.ExportState(),
		d:          s.d,
		fp:         s.fp,
		ct:         s.ct,
		metrics:    fc.Metrics(),
		degraded:   fc.Degradations(),
		notes:      s.notes,
		notesExtra: s.notesExtra,
		tres:       s.tres,
		ppac:       s.ppac,
		pw:         s.pw,
	}
	if s.st != nil {
		dd.st = s.st.Snapshot()
	}
	if s.cache != nil {
		dd.routes = s.cache.Export()
	}
	if s.checks != nil {
		dd.hasChecks = true
		dd.chkState = s.checks.State()
		dd.chkReps = s.checks.Reports()
	}
	if s.preassign != nil {
		dd.hasPreassign = true
		for inst, t := range s.preassign { //maporder:ok collection loop; pairs sorted by Inst immediately below
			dd.preassign = append(dd.preassign, preassignPair{Inst: int32(inst.ID), Tier: t})
		}
		sort.Slice(dd.preassign, func(i, j int) bool { return dd.preassign[i].Inst < dd.preassign[j].Inst })
	}
	return dd
}

// saveHook returns the flow.Context.Snapshot hook that writes the
// design database at each requested boundary.
func (s *flowState) saveHook(saveSet map[string]bool, path string) func(*flow.Context, string) error {
	multi := len(saveSet) > 1
	return func(fc *flow.Context, stage string) error {
		if !saveSet[stage] {
			return nil
		}
		data, err := encodeDesignDB(s.buildDB(fc, stage))
		if err != nil {
			return fmt.Errorf("core: save design after %s: %w", stage, err)
		}
		out := savePathFor(path, stage, multi)
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return fmt.Errorf("core: save design after %s: %w", stage, err)
		}
		return nil
	}
}

// loadDesign restores a saved database onto the flow state and returns
// the stages remaining after the saved boundary. The restored flow's
// first act is exactly what the uninterrupted flow's next stage would
// have seen: same design object graph (dense IDs, iteration orders,
// journal revisions), same floorplan/clock/timing/cache state, same
// check-session baseline.
func (s *flowState) loadDesign(fc *flow.Context, path string, stages []flow.Stage) ([]flow.Stage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load design: %w", err)
	}
	dd, err := decodeDesignDB(data)
	if err != nil {
		return nil, fmt.Errorf("core: load design %s: %w", path, err)
	}
	if dd.design != s.src.Name {
		return nil, fmt.Errorf("core: load design %s: file holds design %q, flow runs %q", path, dd.design, s.src.Name)
	}
	if dd.config != string(s.cfg) {
		return nil, fmt.Errorf("core: load design %s: file holds config %q, flow runs %q", path, dd.config, s.cfg)
	}
	if !bytes.Equal(dd.fprint, optionsFingerprint(s.opt)) {
		return nil, fmt.Errorf("core: load design %s: %w", path, ErrOptionsMismatch)
	}
	if !boundaryOK(dd.stage) {
		return nil, fmt.Errorf("core: load design %s: %w", path,
			db.Corruptf("saved stage %q is not a resume boundary", dd.stage))
	}
	idx := -1
	for i := range stages {
		if stages[i].Name == dd.stage {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("core: load design %s: saved stage %q is not part of the %s flow", path, dd.stage, s.cfg)
	}

	s.d = dd.d
	s.fp = dd.fp
	s.ct = dd.ct
	if s.fp != nil {
		// The router is created by the place stage; a resume past it
		// recreates the same (stateless, parameter-identical) router.
		s.router = route.New()
		s.router.Workers = s.opt.FlowWorkers
		s.router.Par = &par.Stats{}
	}
	if dd.st != nil {
		st, err := sta.RestoreResult(s.d, dd.st)
		if err != nil {
			return nil, fmt.Errorf("core: load design %s: %w", path, db.Corruptf("%v", err))
		}
		s.st = st
	}
	if dd.routes != nil {
		if s.router == nil {
			return nil, fmt.Errorf("core: load design %s: %w", path,
				db.Corruptf("routing section without a floorplan section"))
		}
		s.cache = route.NewCache(s.router, s.d)
		if err := s.cache.Restore(dd.routes); err != nil {
			return nil, fmt.Errorf("core: load design %s: %w", path, db.Corruptf("%v", err))
		}
	}
	if dd.hasChecks {
		s.checks = &check.Session{}
		s.checks.Restore(dd.chkState, dd.chkReps)
	}
	if dd.hasPreassign {
		s.preassign = make(map[*netlist.Instance]tech.Tier, len(dd.preassign))
		for _, p := range dd.preassign {
			s.preassign[s.d.Instances[p.Inst]] = p.Tier
		}
	}
	s.tres = dd.tres
	s.notes = dd.notes
	s.notesExtra = dd.notesExtra
	if dd.ppac != nil {
		dd.ppac.Clock = s.ct
		s.ppac = dd.ppac
	}
	s.pw = dd.pw
	fc.SeedMetrics(dd.metrics)
	for _, reason := range dd.degraded {
		fc.MarkDegraded(reason)
	}
	return stages[idx+1:], nil
}

// runFlow applies the save/load/stop options around the planned stage
// list and executes it.
func (s *flowState) runFlow(fc *flow.Context, stages []flow.Stage) (*Result, error) {
	opt := s.opt
	if opt.StopAfter != "" {
		idx := -1
		for i := range stages {
			if stages[i].Name == opt.StopAfter {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("core: -stop-after stage %q is not part of the %s flow", opt.StopAfter, s.cfg)
		}
		stages = stages[:idx+1]
	}
	if opt.SaveDesign != "" {
		saveSet, err := parseSaveAfter(opt.SaveAfter)
		if err != nil {
			return nil, err
		}
		// Sorted validation order, so the stage named by the error is
		// the same on every run.
		requested := make([]string, 0, len(saveSet))
		for st := range saveSet { //maporder:ok collection loop; sorted immediately below
			requested = append(requested, st)
		}
		sort.Strings(requested)
		for _, st := range requested {
			found := false
			for i := range stages {
				if stages[i].Name == st {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("core: -save-after stage %q is not part of the executed %s flow", st, s.cfg)
			}
		}
		fc.Snapshot = s.saveHook(saveSet, opt.SaveDesign)
	}
	if opt.LoadDesign != "" {
		var err error
		stages, err = s.loadDesign(fc, opt.LoadDesign, stages)
		if err != nil {
			return nil, err
		}
	}
	return s.execute(fc, stages)
}

// VerifyDesignFile proves a design database is well-formed and
// canonically encoded: it decodes every section (replaying the netlist
// through the journal) and re-encodes the result, which must reproduce
// the input byte for byte.
// DesignFileInfo reads just the META section of a design database —
// the design, configuration, and boundary it was saved at — without
// materializing the netlist or any flow state. Inspection tooling
// (cmd/designdb) uses it to label files cheaply.
func DesignFileInfo(data []byte) (design, config, stage string, err error) {
	body, err := db.ParseHeader(data, db.MagicDesign)
	if err != nil {
		return "", "", "", err
	}
	it := db.NewFrameIter(body)
	for {
		tag, payload, err := it.Next()
		if err == io.EOF {
			return "", "", "", db.Corruptf("no META section")
		}
		if err != nil {
			return "", "", "", err
		}
		if tag != tagMeta {
			continue
		}
		dd := &designDB{}
		r := db.NewReader(payload)
		if err := (&metaSection{dd: dd}).Decode(r); err != nil {
			return "", "", "", err
		}
		return dd.design, dd.config, dd.stage, nil
	}
}

func VerifyDesignFile(data []byte) error {
	dd, err := decodeDesignDB(data)
	if err != nil {
		return err
	}
	enc, err := encodeDesignDB(dd)
	if err != nil {
		return err
	}
	if !bytes.Equal(enc, data) {
		return db.Corruptf("file is not canonically encoded: re-encode differs (%d vs %d bytes)", len(enc), len(data))
	}
	return nil
}
