package core

import "repro/internal/db"

// PutDeepDive writes a Table VIII deep-dive record in field order.
// Exported for the binary evaluation journal, which persists the dive
// alongside each flow's PPAC.
func PutDeepDive(w *db.Writer, d *DeepDive) {
	w.PutF64(d.MemInLatencyPS)
	w.PutF64(d.MemOutLatencyPS)
	w.PutF64(d.MemNetSwitchUW)
	w.PutBool(d.HasMacros)
	w.PutI32(int32(d.ClockBuffers))
	w.PutI32(int32(d.TopBuffers))
	w.PutI32(int32(d.BottomBuffers))
	w.PutF64(d.ClockBufferAreaUM2)
	w.PutF64(d.ClockWLmm)
	w.PutF64(d.ClockMaxLatencyNS)
	w.PutF64(d.ClockMaxSkewNS)
	w.PutF64(d.AvgSkew100NS)
	w.PutF64(d.ClockPeriodNS)
	w.PutF64(d.SlackNS)
	w.PutF64(d.CritSkewNS)
	w.PutF64(d.SetupNS)
	w.PutF64(d.PathDelayNS)
	w.PutF64(d.WireDelayNS)
	w.PutF64(d.CellDelayNS)
	w.PutF64(d.PathWLum)
	w.PutF64(d.TopWLum)
	w.PutF64(d.BottomWLum)
	w.PutI32(int32(d.PathCells))
	w.PutI32(int32(d.PathMIVs))
	w.PutI32(int32(d.TopCells))
	w.PutI32(int32(d.BottomCells))
	w.PutF64(d.TopCellDelayNS)
	w.PutF64(d.BotCellDelayNS)
	w.PutF64(d.AvgTopDelayNS)
	w.PutF64(d.AvgBotDelayNS)
}

// ReadDeepDive reads a record written by PutDeepDive.
func ReadDeepDive(r *db.Reader) (*DeepDive, error) {
	d := &DeepDive{}
	var err error
	readF := func(dst *float64) bool {
		if err != nil {
			return false
		}
		*dst, err = r.F64()
		return err == nil
	}
	readI := func(dst *int) bool {
		if err != nil {
			return false
		}
		var v int32
		if v, err = r.I32(); err != nil {
			return false
		}
		*dst = int(v)
		return true
	}
	readF(&d.MemInLatencyPS)
	readF(&d.MemOutLatencyPS)
	readF(&d.MemNetSwitchUW)
	if err == nil {
		d.HasMacros, err = r.Bool()
	}
	readI(&d.ClockBuffers)
	readI(&d.TopBuffers)
	readI(&d.BottomBuffers)
	readF(&d.ClockBufferAreaUM2)
	readF(&d.ClockWLmm)
	readF(&d.ClockMaxLatencyNS)
	readF(&d.ClockMaxSkewNS)
	readF(&d.AvgSkew100NS)
	readF(&d.ClockPeriodNS)
	readF(&d.SlackNS)
	readF(&d.CritSkewNS)
	readF(&d.SetupNS)
	readF(&d.PathDelayNS)
	readF(&d.WireDelayNS)
	readF(&d.CellDelayNS)
	readF(&d.PathWLum)
	readF(&d.TopWLum)
	readF(&d.BottomWLum)
	readI(&d.PathCells)
	readI(&d.PathMIVs)
	readI(&d.TopCells)
	readI(&d.BottomCells)
	readF(&d.TopCellDelayNS)
	readF(&d.BotCellDelayNS)
	readF(&d.AvgTopDelayNS)
	readF(&d.AvgBotDelayNS)
	if err != nil {
		return nil, err
	}
	return d, nil
}
