package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/flow"
)

// CheckMode selects how much design-integrity checking (internal/check)
// runs at the pipeline's stage boundaries.
type CheckMode string

const (
	// CheckOff disables boundary checking (the default; zero overhead).
	CheckOff CheckMode = "off"
	// CheckFast checks only the sign-off boundary.
	CheckFast CheckMode = "fast"
	// CheckFull checks every instrumented boundary: post-map,
	// post-legalize, post-CTS, and sign-off.
	CheckFull CheckMode = "full"
)

// ParseCheckMode validates a -check flag value ("" means off).
func ParseCheckMode(s string) (CheckMode, error) {
	switch CheckMode(s) {
	case "", CheckOff:
		return CheckOff, nil
	case CheckFast:
		return CheckFast, nil
	case CheckFull:
		return CheckFull, nil
	default:
		return CheckOff, fmt.Errorf("core: unknown check mode %q (want off, fast, or full)", s)
	}
}

// boundaryClasses maps a finished stage to the rule classes its boundary
// asserts, or ok=false for uninstrumented stages. The matrix encodes
// what is honestly invariant at each point of the paper's flows:
//
//   - map:      ERC+ENG — the netlist is fully mapped and journaled, but
//     nothing is placed or partitioned yet.
//   - legalize: ERC+DRC+TDR+ENG — the only boundary where placement DRC
//     holds unconditionally (CTS inserts buffers that later repair
//     passes re-legalize only when they change something).
//   - cts:      ERC+TDR+ENG, now with clock pins required connected.
//   - signoff:  ERC+TDR+ENG plus the PPAC MIV cross-check.
func (s *flowState) boundaryClasses(stage string) (check.Class, bool) {
	if s.opt.Check == CheckFast && stage != StageSignoff {
		return 0, false
	}
	switch stage {
	case StageMap:
		return check.ClassERC | check.ClassENG, true
	case StageLegalize:
		return check.ClassAll, true
	case StageCTS, StageSignoff:
		return check.ClassERC | check.ClassTDR | check.ClassENG, true
	}
	return 0, false
}

// checkBoundary is the flow.Context.Check hook: it runs the boundary's
// rule classes over the current flow state, reports the counters into the
// stage's metric, and (unless report-only) escalates Error-severity
// findings to a stage failure.
func (s *flowState) checkBoundary(fc *flow.Context, stage string) error {
	classes, ok := s.boundaryClasses(stage)
	if !ok || s.d == nil {
		return nil
	}
	in := check.Input{
		Design:     s.d,
		Tiers:      s.tiers,
		RowHeights: rowHeights(s.libs),
		Libs:       s.libs,
		Router:     s.router,
		ClockBuilt: s.ct != nil,
		// After the hetero retarget each die is track-pure — until the
		// 2-D-mode CTS ablation deliberately mixes clock buffers in.
		TierLibs: s.cfg == ConfigHetero && (s.ct == nil || s.opt.Enable3DCTS),
	}
	if s.fp != nil {
		in.HaveFloorplan = true
		in.Core = s.fp.Core
		in.Outline = s.fp.Outline
	}
	if stage == StageSignoff && s.tiers == 2 && s.ppac != nil {
		in.ReportedMIVs = &s.ppac.MIVs
	}
	rep := s.checks.Run(stage, in, classes)
	fc.AddStat(flow.StatCheckRules, int64(len(rep.Stats)))
	fc.AddStat(flow.StatCheckObjects, int64(rep.Checked()))
	fc.AddStat(flow.StatCheckViolations, int64(rep.Count(check.Info)))
	fc.AddStat(flow.StatCheckErrors, int64(rep.Count(check.Error)))
	if s.opt.CheckReportOnly {
		return nil
	}
	return rep.Err(check.Error)
}
