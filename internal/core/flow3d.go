package core

import (
	"fmt"

	"repro/internal/cts"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/synth"
)

// runM3D implements the design as a homogeneous monolithic 3-D chip: the
// Pin-3D-style flow — pseudo-3-D implementation over the halved
// footprint, placement-driven bin-based FM tier partitioning, per-tier
// legalization, 3-D clock tree, and post-partition timing repair.
func runM3D(src *netlist.Design, cfg ConfigName, opt Options) (*Result, error) {
	libs, err := libFor(cfg)
	if err != nil {
		return nil, err
	}
	d, err := cloneMapped(src, libs[0], src.Name)
	if err != nil {
		return nil, err
	}
	if err := synth.Prepare(d, libs[0], synth.DefaultOptions()); err != nil {
		return nil, err
	}
	if err := preSizeForClock(d, libs, 1/opt.ClockGHz, 3); err != nil {
		return nil, err
	}

	// Macro tiers first so the floorplan stacks each die's macros into
	// its own column.
	preassign := assignMacroTiers(d)

	// Pseudo-3-D stage: the whole netlist placed as one 2-D design over
	// the 3-D footprint (cells of both future tiers overlap freely).
	fp, err := placeWithCongestionRetry(d, opt, 2, 1)
	if err != nil {
		return nil, err
	}

	topt := partition.DefaultTierOptions()
	topt.FM.Seed = opt.Seed
	tres, err := partition.TierPartition(d, fp.Core, preassign, topt)
	if err != nil {
		return nil, err
	}

	if _, err := place.LegalizeTiers(d, fp.Core, rowHeights(libs), 2); err != nil {
		return nil, err
	}

	ct, err := cts.Build(d, cts.DefaultOptions(cts.Mode3D, libs))
	if err != nil {
		return nil, err
	}

	router := route.New()
	env := &timingEnv{
		d:       d,
		libs:    libs,
		router:  router,
		period:  1 / opt.ClockGHz,
		latency: ct.LatencyFunc(),
	}
	st, err := repairTiming(env, fp, opt.RepairRounds)
	if err != nil {
		return nil, err
	}
	if st, err = recoverPower(env, fp, st); err != nil {
		return nil, err
	}

	notes := fmt.Sprintf("M3D flow, cut=%d", tres.Cut)
	ppac, pw, err := collect(d, cfg, opt, fp, ct, st, router, notes, tres.Cut)
	if err != nil {
		return nil, err
	}
	return &Result{PPAC: ppac, Design: d, Libs: libs, Clock: ct, Router: router,
		Timing: st, Power: pw, Outline: fp.Outline}, nil
}
