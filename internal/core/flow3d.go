package core

import (
	"fmt"

	"repro/internal/cts"
	"repro/internal/flow"
	"repro/internal/netlist"
)

// planM3D implements the design as a homogeneous monolithic 3-D chip: the
// Pin-3D-style flow — pseudo-3-D implementation over the halved
// footprint, placement-driven bin-based FM tier partitioning, per-tier
// legalization, 3-D clock tree, and post-partition timing repair — as a
// pipeline of map → synth → macro-tiers → place → partition → legalize →
// cts → timing-repair → power-recovery → signoff.
func planM3D(src *netlist.Design, cfg ConfigName, opt Options) (*flowState, []flow.Stage, error) {
	libs, err := libFor(cfg)
	if err != nil {
		return nil, nil, err
	}
	s := &flowState{cfg: cfg, opt: opt, src: src, libs: libs, tiers: 2, areaScale: 1}
	return s, []flow.Stage{
		{Name: StageMap, Run: s.stageMap},
		{Name: StageSynth, Run: s.stageSynth},
		// Macro tiers first so the floorplan stacks each die's macros
		// into its own column.
		{Name: StageMacros, Run: s.stageMacros},
		// Pseudo-3-D stage: the whole netlist placed as one 2-D design
		// over the 3-D footprint (cells of both future tiers overlap
		// freely).
		{Name: StagePlace, Run: s.stagePlace},
		{Name: StagePartition, Run: func(fc *flow.Context) error {
			if err := s.stagePartition(fc); err != nil {
				return err
			}
			s.notes = fmt.Sprintf("M3D flow, cut=%d", s.tres.Cut)
			return nil
		}},
		{Name: StageLegalize, Run: s.stageLegalize},
		{Name: StageCTS, Run: s.stageCTS(cts.Mode3D)},
		{Name: StageRepair, Run: s.stageRepair},
		{Name: StagePower, Run: s.stagePower},
		{Name: StageSignoff, Run: s.stageSignoff},
	}, nil
}
