package core

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/cts"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/tech"
)

// planHetero is the paper's contribution: the Hetero-Pin-3D flow, composed
// as the pipeline map → synth → macro-tiers → place → timing-partition →
// partition → retarget → level-shifters → legalize → cts → timing-repair
// → eco → final-repair → power-recovery → signoff.
//
//  1. Pseudo-3-D stage in the single 12-track technology.
//  2. Cell-based timing criticality → timing-based partitioning pins the
//     most critical 20–30 % of cell area to the fast bottom die.
//  3. Bin-based FM min-cut partitions the remainder.
//  4. Top tier retargets to the 9-track library; the footprint carries
//     the 12.5 % shrink.
//  5. Per-tier legalization (different row heights per die, Fig. 3c).
//  6. 3-D clock tree via the COVER-cell approach (top-die biased).
//  7. Timing repair with per-tier libraries and boundary-cell derates.
//  8. Repartitioning ECO (Algorithm 1) to timing closure.
//
// The conditional stages (timing-partition, level-shifters, eco) stay in
// the pipeline when their ablation switch disables them and no-op, so
// every hetero run reports the same stage list.
func planHetero(src *netlist.Design, opt Options) (*flowState, []flow.Stage, error) {
	libs, err := libFor(ConfigHetero)
	if err != nil {
		return nil, nil, err
	}
	if opt.TopVariant != nil {
		libs[1] = cell.NewLibrary(*opt.TopVariant)
	}
	lib12, lib9 := libs[0], libs[1]
	// The footprint shrink follows the top library's cell height: half
	// the cells keep their 12-track size, half scale by AreaScale.
	shrink := 0.5 + 0.5*lib9.Variant.AreaScale

	s := &flowState{cfg: ConfigHetero, opt: opt, src: src, libs: libs, tiers: 2, areaScale: shrink}

	ctsMode := cts.ModeHetero3D
	if !opt.Enable3DCTS {
		// Ablation (Table V): without the 3-D clock stage the tree is
		// built as if single-die; top-tier sinks pay cross-tier wiring.
		ctsMode = cts.Mode2D
	}

	return s, []flow.Stage{
		// --- Pseudo-3-D stage: single technology (12-track).
		{Name: StageMap, Run: s.stageMap},
		{Name: StageSynth, Run: s.stageSynth},
		{Name: StageMacros, Run: s.stageMacros},
		{Name: StagePlace, Run: s.stagePlace},

		// --- Timing-based partitioning (Sec. III-A1): rank cells by the
		// worst slack of any path through them on the pseudo-3-D design
		// and pin the most critical area fraction to the fast die.
		{Name: StageTimingPartition, Run: func(fc *flow.Context) error {
			if !opt.EnableTimingPartition {
				return nil
			}
			// One-shot pseudo-3-D analysis before any Timer exists; the
			// slack map seeds the partitioner and is never reused.
			st0, err := sta.Analyze(s.d, staConfig(1/opt.ClockGHz, s.router, nil, false, opt.FlowWorkers)) //staleanalyze:ignore pre-Timer seed analysis

			if err != nil {
				return err
			}
			slack := st0.SlackMap()
			crit := partition.PreassignCritical(s.d.Instances,
				func(i *netlist.Instance) float64 { return slack[i.ID] },
				opt.TimingAreaFrac, tech.TierBottom)
			for inst, t := range crit {
				s.preassign[inst] = t
			}
			return nil
		}},

		// --- Bin-based FM on the remainder. The bottom die is targeted
		// slightly light (47 % of pre-shrink area): after the top tier
		// shrinks to 9-track cells the dies utilize comparably, and the
		// repartitioning ECO keeps working headroom on the fast die.
		{Name: StagePartition, Run: func(fc *flow.Context) error {
			topt := partition.DefaultTierOptions()
			topt.FM.Seed = opt.Seed
			topt.FM.TargetFrac = 0.47
			topt.FM.Tolerance = 0.03
			// The fast die runs tight by design (the floorplan already
			// banked the top die's 9-track shrink), and the bin-local
			// refinement lets the bottom share drift above the nominal
			// window when the timing-pinned cells cluster spatially. Cap
			// the drift at the bottom die's physical row capacity so
			// legalization stays feasible with a fragmentation margin.
			topt.MaxFrac0 = bottomCapacityFrac(s.d, s.fp, s.libs[0])
			tres, err := partition.TierPartition(s.d, s.fp.Core, s.preassign, topt)
			if err != nil {
				return err
			}
			s.tres = tres
			return nil
		}},

		// --- Retarget the top die to the low-power 9-track library.
		{Name: StageRetarget, Run: func(fc *flow.Context) error {
			_, err := synth.Retarget(s.d, lib9, func(i *netlist.Instance) bool {
				return i.Tier == tech.TierTop
			})
			return err
		}},

		// --- Level-shifter ablation (Sec. III-B): the paper's rejected
		// alternative inserts a shifter on every tier-crossing net.
		{Name: StageShifters, Run: func(fc *flow.Context) error {
			if !opt.ForceLevelShifters {
				return nil
			}
			n, err := synth.InsertLevelShifters(s.d, func(t tech.Tier) *cell.Library {
				if t == tech.TierTop {
					return lib9
				}
				return lib12
			})
			if err != nil {
				return err
			}
			s.notesExtra = fmt.Sprintf(", %d level shifters", n)
			return nil
		}},

		{Name: StageLegalize, Run: s.stageLegalize},

		// --- 3-D clock tree: COVER-cell methodology, heterogeneous mode.
		{Name: StageCTS, Run: s.stageCTS(ctsMode)},

		// Sign-off timing uses the per-tier libraries and the extracted
		// (tier-true) pin loads directly, so the boundary-cell behaviour
		// of Tables II/III is modeled natively. The derate path
		// (sta.Config.Hetero) exists to emulate a single-technology
		// tool's boundary inaccuracy — which the paper argues cancels
		// along paths and leaves unmodeled in its flow — so it stays off
		// here. Power analysis keeps the heterogeneous derates: the
		// sub-VDD-gate leakage blow-up is a physical effect, not a
		// modeling artifact (Sec. II-B).
		//
		// A light first repair pass only, on a tight area budget:
		// filling the fast die with upsized cells before the ECO would
		// consume the repartitioner's headroom.
		{Name: StageRepair, Run: func(fc *flow.Context) error {
			s.bindTimingEnv(fc)
			st, err := repairTimingBudget(s.env, s.fp, 1, 0.82)
			if err != nil {
				return err
			}
			s.st = st
			return nil
		}},

		// --- Repartitioning ECO (Algorithm 1).
		{Name: StageECO, Run: func(fc *flow.Context) error {
			s.notes = fmt.Sprintf("hetero flow, cut=%d, preassigned=%d%s",
				s.tres.Cut, s.tres.Preassigned, s.notesExtra)
			if !opt.EnableRepartition {
				return nil
			}
			// Refresh sign-off timing before the oracle reads it: analyze
			// audits the extraction cache, so a corrupted cache is caught
			// here — before any repartitioning move taints the design —
			// and the degraded re-run replays the stage from the same
			// untainted state as a clean run.
			st0, err := s.env.analyze()
			if err != nil {
				return err
			}
			s.st = st0
			oracle := &staOracle{env: s.env, res: s.st}
			eopt := partition.DefaultECOOptions()
			eopt.FastTier = tech.TierBottom
			// Wide-and-shallow designs fail across thousands of
			// endpoints; examine enough paths per iteration to reach
			// them.
			eopt.NP = 400
			// Bound the moves by the fast die's placeable area so the
			// bottom tier stays legalizable.
			eopt.FastCapacity = s.fp.Core.Area() * 0.90
			eopt.OnMove = func(inst *netlist.Instance, to tech.Tier) error {
				lib := lib9
				if to == tech.TierBottom {
					lib = lib12
				}
				eq, err := lib.Equivalent(inst.Master)
				if err != nil {
					return err
				}
				return s.d.ReplaceMaster(inst, eq)
			}
			rep, err := partition.RepartitionECO(s.d, oracle, eopt)
			if err != nil {
				return err
			}
			// Moves change cell sizes and tiers: re-legalize and re-time.
			if _, err := place.LegalizeTiers(s.d, s.fp.Core, rowHeights(libs), 2); err != nil {
				return err
			}
			// Keep s.st valid on failure: a multi-assign here would nil it
			// out, and a degraded re-run of this stage reads it.
			st, err := s.env.analyze()
			if err != nil {
				return err
			}
			s.st = st
			s.notes += fmt.Sprintf(", eco: %d moved, %d undone in %d iters", rep.Moved, rep.Undone, rep.Iterations)
			return nil
		}},

		// Full post-ECO timing repair, then power recovery.
		{Name: StageFinalRepair, Run: func(fc *flow.Context) error {
			st, err := repairTiming(s.env, s.fp, opt.RepairRounds)
			if err != nil {
				return err
			}
			s.st = st
			return nil
		}},
		{Name: StagePower, Run: s.stagePower},
		{Name: StageSignoff, Run: s.stageSignoff},
	}, nil
}

// staOracle adapts the STA engine to the repartitioning loop's
// TimingOracle interface.
type staOracle struct {
	env *timingEnv
	res *sta.Result
}

func (o *staOracle) CriticalPaths(n int) [][]partition.PathCell {
	paths := o.res.CriticalPaths(n)
	out := make([][]partition.PathCell, len(paths))
	for i, p := range paths {
		cells := make([]partition.PathCell, len(p.Stages))
		for j, s := range p.Stages {
			cells[j] = partition.PathCell{Inst: s.Inst, Delay: s.CellDelay + s.WireDelay}
		}
		out[i] = cells
	}
	return out
}

func (o *staOracle) WNSTNS() (float64, float64) { return o.res.WNS, o.res.TNS }

func (o *staOracle) Refresh() error {
	res, err := o.env.analyze()
	if err != nil {
		return err
	}
	o.res = res
	return nil
}
