package core

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/cts"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/tech"
)

// runHetero is the paper's contribution: the Hetero-Pin-3D flow.
//
//  1. Pseudo-3-D stage in the single 12-track technology.
//  2. Cell-based timing criticality → timing-based partitioning pins the
//     most critical 20–30 % of cell area to the fast bottom die.
//  3. Bin-based FM min-cut partitions the remainder.
//  4. Top tier retargets to the 9-track library; the footprint carries
//     the 12.5 % shrink.
//  5. Per-tier legalization (different row heights per die, Fig. 3c).
//  6. 3-D clock tree via the COVER-cell approach (top-die biased).
//  7. Timing repair with per-tier libraries and boundary-cell derates.
//  8. Repartitioning ECO (Algorithm 1) to timing closure.
func runHetero(src *netlist.Design, opt Options) (*Result, error) {
	libs, err := libFor(ConfigHetero)
	if err != nil {
		return nil, err
	}
	if opt.TopVariant != nil {
		libs[1] = cell.NewLibrary(*opt.TopVariant)
	}
	lib12, lib9 := libs[0], libs[1]
	// The footprint shrink follows the top library's cell height: half
	// the cells keep their 12-track size, half scale by AreaScale.
	shrink := 0.5 + 0.5*lib9.Variant.AreaScale

	// --- Pseudo-3-D stage: single technology (12-track).
	d, err := cloneMapped(src, lib12, src.Name)
	if err != nil {
		return nil, err
	}
	if err := synth.Prepare(d, lib12, synth.DefaultOptions()); err != nil {
		return nil, err
	}
	if err := preSizeForClock(d, libs, 1/opt.ClockGHz, 3); err != nil {
		return nil, err
	}

	preassign := assignMacroTiers(d)
	notesExtra := ""

	fp, err := placeWithCongestionRetry(d, opt, 2, shrink)
	if err != nil {
		return nil, err
	}

	router := route.New()
	period := 1 / opt.ClockGHz

	// --- Timing-based partitioning (Sec. III-A1): rank cells by the
	// worst slack of any path through them on the pseudo-3-D design and
	// pin the most critical area fraction to the fast die.
	if opt.EnableTimingPartition {
		cfg := sta.DefaultConfig(period)
		cfg.Router = router
		st0, err := sta.Analyze(d, cfg)
		if err != nil {
			return nil, err
		}
		slack := st0.SlackMap()
		crit := partition.PreassignCritical(d.Instances,
			func(i *netlist.Instance) float64 { return slack[i.ID] },
			opt.TimingAreaFrac, tech.TierBottom)
		for inst, t := range crit {
			preassign[inst] = t
		}
	}

	// --- Bin-based FM on the remainder. The bottom die is targeted
	// slightly light (47 % of pre-shrink area): after the top tier
	// shrinks to 9-track cells the dies utilize comparably, and the
	// repartitioning ECO keeps working headroom on the fast die.
	topt := partition.DefaultTierOptions()
	topt.FM.Seed = opt.Seed
	topt.FM.TargetFrac = 0.47
	topt.FM.Tolerance = 0.03
	tres, err := partition.TierPartition(d, fp.Core, preassign, topt)
	if err != nil {
		return nil, err
	}

	// --- Retarget the top die to the low-power 9-track library.
	if _, err := synth.Retarget(d, lib9, func(i *netlist.Instance) bool {
		return i.Tier == tech.TierTop
	}); err != nil {
		return nil, err
	}

	// --- Level-shifter ablation (Sec. III-B): the paper's rejected
	// alternative inserts a shifter on every tier-crossing net.
	if opt.ForceLevelShifters {
		n, err := synth.InsertLevelShifters(d, func(t tech.Tier) *cell.Library {
			if t == tech.TierTop {
				return lib9
			}
			return lib12
		})
		if err != nil {
			return nil, err
		}
		notesExtra = fmt.Sprintf(", %d level shifters", n)
	}

	if _, err := place.LegalizeTiers(d, fp.Core, rowHeights(libs), 2); err != nil {
		return nil, err
	}

	// --- 3-D clock tree: COVER-cell methodology, heterogeneous mode.
	ctsMode := cts.ModeHetero3D
	if !opt.Enable3DCTS {
		// Ablation (Table V): without the 3-D clock stage the tree is
		// built as if single-die; top-tier sinks pay cross-tier wiring.
		ctsMode = cts.Mode2D
	}
	ct, err := cts.Build(d, cts.DefaultOptions(ctsMode, libs))
	if err != nil {
		return nil, err
	}

	// Sign-off timing uses the per-tier libraries and the extracted
	// (tier-true) pin loads directly, so the boundary-cell behaviour of
	// Tables II/III is modeled natively. The derate path (sta.Config.
	// Hetero) exists to emulate a single-technology tool's boundary
	// inaccuracy — which the paper argues cancels along paths and leaves
	// unmodeled in its flow — so it stays off here. Power analysis keeps
	// the heterogeneous derates: the sub-VDD-gate leakage blow-up is a
	// physical effect, not a modeling artifact (Sec. II-B).
	env := &timingEnv{
		d:       d,
		libs:    libs,
		router:  router,
		period:  period,
		latency: ct.LatencyFunc(),
	}
	// A light first repair pass only, on a tight area budget: filling the
	// fast die with upsized cells before the ECO would consume the
	// repartitioner's headroom.
	st, err := repairTimingBudget(env, fp, 1, 0.82)
	if err != nil {
		return nil, err
	}

	// --- Repartitioning ECO (Algorithm 1).
	notes := fmt.Sprintf("hetero flow, cut=%d, preassigned=%d%s", tres.Cut, tres.Preassigned, notesExtra)
	if opt.EnableRepartition {
		oracle := &staOracle{env: env, res: st}
		eopt := partition.DefaultECOOptions()
		eopt.FastTier = tech.TierBottom
		// Wide-and-shallow designs fail across thousands of endpoints;
		// examine enough paths per iteration to reach them.
		eopt.NP = 400
		// Bound the moves by the fast die's placeable area so the bottom
		// tier stays legalizable.
		eopt.FastCapacity = fp.Core.Area() * 0.90
		eopt.OnMove = func(inst *netlist.Instance, to tech.Tier) error {
			lib := lib9
			if to == tech.TierBottom {
				lib = lib12
			}
			eq, err := lib.Equivalent(inst.Master)
			if err != nil {
				return err
			}
			return d.ReplaceMaster(inst, eq)
		}
		rep, err := partition.RepartitionECO(d, oracle, eopt)
		if err != nil {
			return nil, err
		}
		// Moves change cell sizes and tiers: re-legalize and re-time.
		if _, err := place.LegalizeTiers(d, fp.Core, rowHeights(libs), 2); err != nil {
			return nil, err
		}
		if st, err = env.analyze(); err != nil {
			return nil, err
		}
		notes += fmt.Sprintf(", eco: %d moved, %d undone in %d iters", rep.Moved, rep.Undone, rep.Iterations)
	}
	// Full post-ECO timing repair, then power recovery.
	if st, err = repairTiming(env, fp, opt.RepairRounds); err != nil {
		return nil, err
	}
	if st, err = recoverPower(env, fp, st); err != nil {
		return nil, err
	}

	ppac, pw, err := collect(d, ConfigHetero, opt, fp, ct, st, router, notes, tres.Cut)
	if err != nil {
		return nil, err
	}
	return &Result{PPAC: ppac, Design: d, Libs: libs, Clock: ct, Router: router,
		Timing: st, Power: pw, Outline: fp.Outline}, nil
}

// staOracle adapts the STA engine to the repartitioning loop's
// TimingOracle interface.
type staOracle struct {
	env *timingEnv
	res *sta.Result
}

func (o *staOracle) CriticalPaths(n int) [][]partition.PathCell {
	paths := o.res.CriticalPaths(n)
	out := make([][]partition.PathCell, len(paths))
	for i, p := range paths {
		cells := make([]partition.PathCell, len(p.Stages))
		for j, s := range p.Stages {
			cells[j] = partition.PathCell{Inst: s.Inst, Delay: s.CellDelay + s.WireDelay}
		}
		out[i] = cells
	}
	return out
}

func (o *staOracle) WNSTNS() (float64, float64) { return o.res.WNS, o.res.TNS }

func (o *staOracle) Refresh() error {
	res, err := o.env.analyze()
	if err != nil {
		return err
	}
	o.res = res
	return nil
}
