package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/netlist"
)

// FmaxOptions controls the maximum-frequency search.
type FmaxOptions struct {
	// LoGHz and HiGHz bracket the search.
	LoGHz, HiGHz float64
	// Iterations of binary search (each runs a full flow).
	Iterations int
	// SlackFrac is the timing-met criterion: WNS ≥ −SlackFrac × period
	// ("a worst negative slack of ≈5–7 % of the clock period",
	// Sec. IV-A2).
	SlackFrac float64
	// Flow carries the per-run options (ClockGHz is overwritten).
	Flow Options
}

// DefaultFmaxOptions brackets 28 nm digital logic frequencies.
func DefaultFmaxOptions() FmaxOptions {
	return FmaxOptions{
		LoGHz:      0.2,
		HiGHz:      6.0,
		Iterations: 6,
		SlackFrac:  0.05,
		Flow:       DefaultOptions(1.0),
	}
}

// FindFmax binary-searches the maximum achievable frequency of the design
// in the given configuration. The paper sweeps the fast 12-track 2-D
// implementation this way and uses the result as the iso-performance
// target for every other configuration. Each probe is a full flow run
// under ctx, so cancelling ctx aborts the search with a stage-attributed
// *flow.Error.
func FindFmax(ctx context.Context, src *netlist.Design, cfg ConfigName, opt FmaxOptions) (float64, error) {
	if opt.LoGHz <= 0 || opt.HiGHz <= opt.LoGHz {
		return 0, fmt.Errorf("core: bad fmax bracket [%v, %v]", opt.LoGHz, opt.HiGHz)
	}
	if opt.Iterations <= 0 {
		opt.Iterations = 1
	}
	probe := func(f float64) (met bool, effD float64, err error) {
		o := opt.Flow
		o.ClockGHz = f
		r, err := Run(ctx, src, cfg, o)
		if err != nil {
			return false, 0, err
		}
		return r.PPAC.WNS >= -opt.SlackFrac/f, r.PPAC.EffDelayNS, nil
	}

	// Adaptive fixed-point search: each probe's effective delay predicts
	// the achievable frequency directly (1/effDelay), so the sweep
	// converges in a handful of flow runs instead of a long bisection.
	f := (opt.LoGHz + opt.HiGHz) / 4
	best := 0.0
	for i := 0; i < opt.Iterations; i++ {
		met, effD, err := probe(f)
		if err != nil {
			return 0, err
		}
		if met && f > best {
			best = f
		}
		next := clampProbe(effD, opt.LoGHz, opt.HiGHz)
		// Converged: the prediction matches the probe.
		if math.Abs(next-f)/f < 0.02 {
			if met {
				return f, nil
			}
			// Barely-failing fixed point: settle slightly below.
			f = next * 0.97
			continue
		}
		f = next
	}
	if best > 0 {
		return best, nil
	}
	return opt.LoGHz, nil
}

// clampProbe turns a probe's effective delay into the next frequency to
// try, clamped to the search bracket. A non-positive effective delay
// (WNS at or beyond the full period — an over-constrained probe) has no
// meaningful reciprocal; the search jumps to the top of the bracket,
// which such a result claims is reachable.
func clampProbe(effD, lo, hi float64) float64 {
	if effD <= 0 {
		return hi
	}
	next := 1 / effD
	if next < lo {
		return lo
	}
	if next > hi {
		return hi
	}
	return next
}
