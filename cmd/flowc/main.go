// Command flowc is the wire-protocol client for cmd/flowd.
//
// Usage:
//
//	flowc ping    -addr host:port
//	flowc ppac    -addr host:port [-design ldpc] [-config 2D-12T]
//	              [-scale 0.25] [-seed 1] [-iters 0] [-events]
//	flowc session -addr host:port [-design ldpc] [-config 2D-12T]
//	              [-scale 0.25] [-seed 1] [-clock 1.0] [-boundary place]
//	              [-script file]
//	flowc load    -addr host:port [-sessions 500] [-concurrency 32]
//	              [-rounds 3] [-out BENCH_serve.json] [-p99-bound ms]
//
// session opens an interactive session and executes a mutation/timing
// script (from -script, or stdin when omitted), one command per line:
//
//	move <id|name> <x> <y>    # place an instance at (x, y) µm
//	tier <id|name> <t>        # move an instance to tier t
//	timing                    # incremental WNS/TNS query
//
// load drives the loopback load harness and optionally writes its
// latency distributions as a BENCH_serve.json file; -p99-bound fails
// the run (exit 1) if any operation's p99 exceeds the bound, which is
// how CI smoke-tests the daemon under concurrency.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "flowc: usage: flowc ping|ppac|session|load [flags]")
		return 2
	}
	var err error
	switch args[0] {
	case "ping":
		err = runPing(args[1:], stdout)
	case "ppac":
		err = runPPAC(args[1:], stdout)
	case "session":
		err = runSession(args[1:], stdout)
	case "load":
		err = runLoad(args[1:], stdout)
	default:
		fmt.Fprintf(stderr, "flowc: unknown subcommand %q (want ping, ppac, session, or load)\n", args[0])
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "flowc:", err)
		return 1
	}
	return 0
}

// g formats a float the way every table in this repo does: shortest
// round-trip representation, no fixed precision.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func runPing(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flowc ping", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9173", "daemon address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := serve.Dial(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	start := time.Now()
	if err := cl.Ping(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pong from %s in %v\n", *addr, time.Since(start).Round(time.Microsecond))
	return nil
}

func runPPAC(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flowc ppac", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", "127.0.0.1:9173", "daemon address")
		design = fs.String("design", "ldpc", "design name")
		config = fs.String("config", "2D-12T", "implementation configuration")
		scale  = fs.Float64("scale", 0.25, "design scale")
		seed   = fs.Int64("seed", 1, "generation seed")
		iters  = fs.Int("iters", 0, "f_max search iterations (0 = default)")
		events = fs.Bool("events", false, "stream stage events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := serve.Dial(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	var onEvent func(*serve.Event)
	if *events {
		onEvent = func(ev *serve.Event) { printEvent(stdout, ev) }
	}
	res, err := cl.RunPPAC(&serve.PPACRequest{
		Design:         *design,
		Config:         *config,
		Scale:          *scale,
		Seed:           *seed,
		FmaxIterations: int32(*iters),
		Events:         *events,
	}, onEvent)
	if err != nil {
		return err
	}
	p := res.PPAC
	fmt.Fprintf(stdout, "%s/%s @ %s GHz (fmax %s GHz)\n", p.Design, p.Config, g(p.FreqGHz), g(res.FmaxGHz))
	fmt.Fprintf(stdout, "footprint_mm2 %s\nsi_area_mm2 %s\ndensity %s\nwl_m %s\nmivs %d\n",
		g(p.FootprintMM2), g(p.SiAreaMM2), g(p.Density), g(p.WLm), p.MIVs)
	fmt.Fprintf(stdout, "power_mw %s\nleakage_mw %s\nclock_power_mw %s\n",
		g(p.PowerMW), g(p.LeakageMW), g(p.ClockPowerMW))
	fmt.Fprintf(stdout, "wns_ns %s\ntns_ns %s\neff_delay_ns %s\npdp_pj %s\n",
		g(p.WNS), g(p.TNS), g(p.EffDelayNS), g(p.PDPpJ))
	fmt.Fprintf(stdout, "die_cost_uc %s\ncost_per_cm2 %s\n", g(p.DieCostMicroC), g(p.CostPerCm2))
	return nil
}

func printEvent(stdout io.Writer, ev *serve.Event) {
	switch ev.Kind {
	case serve.EvStageStart:
		fmt.Fprintf(stdout, "# %s/%s: %s...\n", ev.Design, ev.Config, ev.Stage)
	case serve.EvStageDone:
		if ev.Err != "" {
			fmt.Fprintf(stdout, "# %s/%s: %s FAILED: %s\n", ev.Design, ev.Config, ev.Stage, ev.Err)
		} else {
			fmt.Fprintf(stdout, "# %s/%s: %s done in %v (%d cells)\n",
				ev.Design, ev.Config, ev.Stage, ev.Wall.Round(time.Millisecond), ev.Cells)
		}
	case serve.EvFmaxDone:
		fmt.Fprintf(stdout, "# %s: fmax %s GHz (%d cells)\n", ev.Design, g(ev.Value), ev.Cells)
	case serve.EvConfigDone:
		fmt.Fprintf(stdout, "# %s/%s: evaluation complete\n", ev.Design, ev.Config)
	}
}

func runSession(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flowc session", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9173", "daemon address")
		design   = fs.String("design", "ldpc", "design name")
		config   = fs.String("config", "2D-12T", "implementation configuration")
		scale    = fs.Float64("scale", 0.25, "design scale")
		seed     = fs.Int64("seed", 1, "generation seed")
		clock    = fs.Float64("clock", 1.0, "clock frequency in GHz")
		boundary = fs.String("boundary", "place", "flow stage the session opens at")
		script   = fs.String("script", "", "script file (default: stdin)")
		events   = fs.Bool("events", false, "stream stage events while opening")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src io.Reader = os.Stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	cl, err := serve.Dial(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	var onEvent func(*serve.Event)
	if *events {
		onEvent = func(ev *serve.Event) { printEvent(stdout, ev) }
	}
	info, err := cl.Open(&serve.OpenRequest{
		Design:   *design,
		Config:   *config,
		Scale:    *scale,
		Seed:     *seed,
		ClockGHz: *clock,
		Boundary: *boundary,
		Events:   *events,
	}, onEvent)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "session %d: %s/%s at %s, %d cells, %d nets, clock %s GHz\n",
		info.ID, *design, *config, *boundary, info.Cells, info.Nets, g(info.ClockGHz))

	return runScript(cl, src, stdout)
}

// runScript executes session commands line by line, batching
// consecutive mutations into one atomic MUTS request per flush point
// (a timing command or end of script).
func runScript(cl *serve.Client, src io.Reader, stdout io.Writer) error {
	var pending []serve.Mutation
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		res, err := cl.Mutate(pending)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "applied %d mutations\n", res.Applied)
		pending = pending[:0]
		return nil
	}
	target := func(tok string) serve.Mutation {
		if id, err := strconv.ParseInt(tok, 10, 32); err == nil {
			return serve.Mutation{ID: int32(id)}
		}
		return serve.Mutation{ID: -1, Name: tok}
	}

	sc := bufio.NewScanner(src)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(strings.SplitN(sc.Text(), "#", 2)[0])
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "move":
			if len(fields) != 4 {
				return fmt.Errorf("line %d: usage: move <id|name> <x> <y>", line)
			}
			m := target(fields[1])
			m.Kind = serve.MutSetLoc
			var err error
			if m.X, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			if m.Y, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			pending = append(pending, m)
		case "tier":
			if len(fields) != 3 {
				return fmt.Errorf("line %d: usage: tier <id|name> <t>", line)
			}
			m := target(fields[1])
			m.Kind = serve.MutSetTier
			tv, err := strconv.ParseUint(fields[2], 10, 8)
			if err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			m.Tier = uint8(tv)
			pending = append(pending, m)
		case "timing":
			if err := flush(); err != nil {
				return err
			}
			tr, err := cl.Timing()
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wns %s tns %s hold_wns %s endpoints %d failing %d (update: %d full, %d incremental, %d nodes)\n",
				g(tr.WNS), g(tr.TNS), g(tr.HoldWNS), tr.Endpoints, tr.FailingEndpoints,
				tr.FullUpdates, tr.IncrementalUpdates, tr.NodesReevaluated)
		default:
			return fmt.Errorf("line %d: unknown command %q (want move, tier, or timing)", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

func runLoad(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flowc load", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9173", "daemon address")
		sessions = fs.Int("sessions", 500, "total session lifecycles")
		conc     = fs.Int("concurrency", 32, "sessions in flight at once")
		rounds   = fs.Int("rounds", 3, "mutate+timing rounds per session")
		design   = fs.String("design", "ldpc", "design name")
		config   = fs.String("config", "2D-12T", "implementation configuration")
		scale    = fs.Float64("scale", 0.05, "design scale")
		seed     = fs.Int64("seed", 1, "generation seed")
		boundary = fs.String("boundary", "place", "session boundary stage")
		out      = fs.String("out", "", "write latency distributions to this BENCH_serve.json file")
		bound    = fs.Float64("p99-bound", 0, "fail if any op's p99 exceeds this many ms (0 = no bound)")
		desc     = fs.String("desc", "flowd loopback load test", "description recorded in -out")
		cpu      = fs.String("cpu", "", "cpu string recorded in -out")
		date     = fs.String("date", "", "date recorded in -out (default today)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		Addr:        *addr,
		Sessions:    *sessions,
		Concurrency: *conc,
		Rounds:      *rounds,
		Design:      *design,
		Config:      *config,
		Scale:       *scale,
		Seed:        *seed,
		Boundary:    *boundary,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.Summary())

	if *out != "" {
		d := *date
		if d == "" {
			d = time.Now().Format("2006-01-02")
		}
		if err := rep.WriteBench(*out, *desc, d, *cpu); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d protocol errors; first: %s", rep.Errors, strings.Join(rep.FirstErrors, "; "))
	}
	if *bound > 0 {
		for _, op := range []struct {
			name string
			s    serve.LatencyStats
		}{{"open", rep.Open}, {"mutate", rep.Mutate}, {"timing", rep.Timing}, {"close", rep.Close}} {
			if p99 := float64(op.s.P99.Microseconds()) / 1000; p99 > *bound {
				return fmt.Errorf("%s p99 %.2fms exceeds bound %.2fms", op.name, p99, *bound)
			}
		}
	}
	return nil
}
