package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/serve"
	"repro/internal/sta"
	"repro/internal/tech"
)

func startDaemon(t *testing.T) string {
	t.Helper()
	s := serve.New(serve.Options{CacheDir: t.TempDir()})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return lis.Addr().String()
}

// TestPPACMatchesOfflineSuite is the cmd-level acceptance check: flowc
// ppac against a live daemon prints exactly the numbers the offline
// evaluation suite (cmd/ppac's engine) computes for the same unit.
func TestPPACMatchesOfflineSuite(t *testing.T) {
	addr := startDaemon(t)

	var out, errb bytes.Buffer
	code := run([]string{"ppac", "-addr", addr,
		"-design", "ldpc", "-config", "2D-12T",
		"-scale", "0.05", "-seed", "1", "-iters", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("flowc ppac exited %d: %s", code, errb.String())
	}

	s, err := eval.RunSuite(context.Background(), eval.SuiteOptions{
		Scale:          0.05,
		Seed:           1,
		Designs:        []designs.Name{"ldpc"},
		Configs:        []core.ConfigName{core.Config2D12T},
		FmaxIterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Results["ldpc"][core.Config2D12T].PPAC

	text := out.String()
	for _, want := range []string{
		"fmax " + g(s.Fmax["ldpc"]) + " GHz",
		"power_mw " + g(p.PowerMW) + "\n",
		"wns_ns " + g(p.WNS) + "\n",
		"pdp_pj " + g(p.PDPpJ) + "\n",
		"die_cost_uc " + g(p.DieCostMicroC) + "\n",
		"wl_m " + g(p.WLm) + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("flowc ppac output missing %q:\n%s", want, text)
		}
	}
}

// TestSessionScriptMatchesOffline replays a scripted session through
// the CLI and checks the printed incremental WNS against a fresh
// offline analysis of the same mutations.
func TestSessionScriptMatchesOffline(t *testing.T) {
	addr := startDaemon(t)

	script := t.TempDir() + "/session.txt"
	const scriptText = `# flowc session script
timing
move 3 12.5 40    # by instance id
move 9 80 7.25
timing
`
	if err := os.WriteFile(script, []byte(scriptText), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run([]string{"session", "-addr", addr,
		"-design", "ldpc", "-config", "2D-12T",
		"-scale", "0.05", "-seed", "1", "-clock", "1.0",
		"-boundary", "place", "-script", script}, &out, &errb)
	if code != 0 {
		t.Fatalf("flowc session exited %d: %s", code, errb.String())
	}

	// Offline twin: same flow, same mutations, fresh analysis.
	lib := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate("ldpc", lib, designs.Params{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(1.0)
	opt.Seed = 1
	opt.StopAfter = core.StagePlace
	res, err := core.Run(context.Background(), src, core.Config2D12T, opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := serve.TimingConfig(1.0, core.Config2D12T, res.Clock, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref0, err := sta.Analyze(res.Design, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.Design.Instances[3].SetLoc(geom.Point{X: 12.5, Y: 40})
	res.Design.Instances[9].SetLoc(geom.Point{X: 80, Y: 7.25})
	ref1, err := sta.Analyze(res.Design, cfg)
	if err != nil {
		t.Fatal(err)
	}

	text := out.String()
	if !strings.Contains(text, "applied 2 mutations") {
		t.Errorf("script did not batch both moves:\n%s", text)
	}
	for i, want := range []string{"wns " + g(ref0.WNS) + " tns " + g(ref0.TNS),
		"wns " + g(ref1.WNS) + " tns " + g(ref1.TNS)} {
		if !strings.Contains(text, want) {
			t.Errorf("timing line %d: output missing %q:\n%s", i, want, text)
		}
	}
}

// TestLoadSubcommand smoke-tests flowc load end to end, including the
// BENCH output file and the p99 bound path.
func TestLoadSubcommand(t *testing.T) {
	addr := startDaemon(t)
	benchPath := t.TempDir() + "/BENCH_serve.json"

	var out, errb bytes.Buffer
	code := run([]string{"load", "-addr", addr,
		"-sessions", "16", "-concurrency", "8", "-rounds", "2",
		"-scale", "0.05", "-out", benchPath, "-date", "2026-08-08"}, &out, &errb)
	if code != 0 {
		t.Fatalf("flowc load exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "0 errors") {
		t.Errorf("load summary reports errors:\n%s", out.String())
	}
	if _, err := os.Stat(benchPath); err != nil {
		t.Errorf("BENCH file not written: %v", err)
	}

	// An absurdly tight bound must fail the run.
	out.Reset()
	errb.Reset()
	code = run([]string{"load", "-addr", addr,
		"-sessions", "4", "-concurrency", "2", "-rounds", "1",
		"-scale", "0.05", "-p99-bound", "0.000001"}, &out, &errb)
	if code != 1 {
		t.Fatalf("impossible p99 bound exited %d, want 1: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "exceeds bound") {
		t.Errorf("bound failure message missing: %s", errb.String())
	}
}

// TestBadUsage pins the CLI's exit codes.
func TestBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"frobnicate"}, &out, &errb); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if code := run([]string{"ping", "-addr", "127.0.0.1:1"}, &out, &errb); code != 1 {
		t.Errorf("unreachable daemon: exit %d, want 1", code)
	}
}
