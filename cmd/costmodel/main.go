// Command costmodel prints the paper's Table IV cost model and sweeps die
// cost versus area for the 2-D and 3-D integration options, showing where
// folding a design into two half-footprint tiers becomes cheaper than one
// large die despite the 3-D integration premium.
//
// Usage:
//
//	costmodel [-from 0.05] [-to 2.0] [-steps 12]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cost"
	"repro/internal/eval"
	"repro/internal/report"
)

func main() {
	var (
		from  = flag.Float64("from", 0.05, "sweep start, 2-D die area in mm²")
		to    = flag.Float64("to", 2.0, "sweep end, mm²")
		steps = flag.Int("steps", 12, "sweep points")
	)
	flag.Parse()

	fmt.Println(eval.TableIV())

	m := cost.Default()
	t := report.NewTable("Die cost sweep: one 2-D die vs the same silicon folded into two 3-D tiers (×10⁻⁶ C')",
		"2D area mm²", "2D cost", "3D cost (A/2 per tier)", "3D/2D")
	if *steps < 2 {
		*steps = 2
	}
	for i := 0; i < *steps; i++ {
		a := *from + (*to-*from)*float64(i)/float64(*steps-1)
		c2, err := m.DieCost2D(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costmodel:", err)
			os.Exit(1)
		}
		c3, err := m.DieCost3D(a / 2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costmodel:", err)
			os.Exit(1)
		}
		t.AddRowf(fmt.Sprintf("%.3f", a), fmt.Sprintf("%.3f", c2*1e6),
			fmt.Sprintf("%.3f", c3*1e6), fmt.Sprintf("%.3f", c3/c2))
	}
	fmt.Println(t)
	fmt.Println("The heterogeneous flow additionally shrinks the folded footprint by 12.5 %")
	fmt.Println("(9-track top tier), moving the 3D/2D ratio further in 3-D's favour.")
}
