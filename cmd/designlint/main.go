// Command designlint runs the design-integrity checker (internal/check)
// standalone — the repository's ERC/DRC lint tool.
//
// Modes (exactly one):
//
//	designlint -rules
//	    Print the rule catalog (IDs, severities, classes, rationale).
//
//	designlint -verilog netlist.v
//	    Parse a structural Verilog netlist (the WriteVerilog subset) and
//	    run the electrical rules (ERC) over it.
//
//	designlint -design cpu [-config Hetero-M3D] [-scale 0.1] [-seed 1]
//	           [-clock 1.0] [-check full]
//	    Generate the paper design, implement it, and lint every
//	    instrumented stage boundary in report-only mode, printing each
//	    boundary's findings instead of aborting the flow on the first.
//
// Exit codes: 0 = clean (no Error-severity findings), 1 = Error-severity
// findings or flow failure, 2 = usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cell"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/tech"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, for tests.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("designlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules  = fs.Bool("rules", false, "print the rule catalog and exit")
		vlog   = fs.String("verilog", "", "lint this structural Verilog netlist (ERC rules)")
		design = fs.String("design", "", "implement this paper design (netcard, aes, ldpc, cpu) and lint its stage boundaries")
		config = fs.String("config", string(core.ConfigHetero), "configuration for -design mode")
		scale  = fs.Float64("scale", 0.1, "design scale for -design mode")
		seed   = fs.Int64("seed", 1, "generation/partitioning seed for -design mode")
		clock  = fs.Float64("clock", 1.0, "target clock in GHz for -design mode")
		mode   = fs.String("check", "full", "boundary coverage for -design mode: fast or full")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	switch {
	case *rules:
		printRules(stdout)
		return 0
	case *vlog != "":
		return lintVerilog(*vlog, stdout, stderr)
	case *design != "":
		return lintFlow(*design, *config, *scale, *clock, *seed, *mode, stdout, stderr)
	}
	fmt.Fprintln(stderr, "designlint: one of -rules, -verilog, or -design is required")
	fs.Usage()
	return 2
}

func printRules(w io.Writer) {
	t := report.NewTable("Design-integrity rule catalog (DESIGN.md §6.4)",
		"Rule", "Class", "Severity", "Title")
	for _, r := range check.Rules() {
		t.AddRowf(r.ID, r.Class.String(), r.Severity.String(), r.Title)
	}
	t.Render(w)
	fmt.Fprintln(w)
	for _, r := range check.Rules() {
		fmt.Fprintf(w, "%s — %s\n    %s\n", r.ID, r.Title, r.Doc)
	}
}

// lintVerilog parses a netlist in the WriteVerilog interchange subset,
// resolving masters against the built-in 12- and 9-track libraries (the
// "_9T" suffix selects the 9-track one), and runs the ERC rules.
func lintVerilog(path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "designlint:", err)
		return 2
	}
	defer f.Close()

	lib12 := cell.NewLibrary(tech.Variant12T())
	lib9 := cell.NewLibrary(tech.Variant9T())
	d, err := netlist.ReadVerilog(f, func(name string) (*cell.Master, error) {
		if strings.HasSuffix(name, "_9T") {
			return lib9.Master(name)
		}
		return lib12.Master(name)
	})
	if err != nil {
		fmt.Fprintln(stderr, "designlint:", err)
		return 2
	}

	rep := check.Run(check.Input{Design: d, Libs: [2]*cell.Library{lib12, lib9}}, check.ClassERC)
	return printReports(stdout, path, []*check.Report{rep})
}

// lintFlow implements the design with boundary checks in report-only mode
// and prints every boundary's findings.
func lintFlow(design, config string, scale, clock float64, seed int64, mode string, stdout, stderr io.Writer) int {
	cm, err := core.ParseCheckMode(mode)
	if err != nil || cm == core.CheckOff {
		fmt.Fprintf(stderr, "designlint: -check must be fast or full (got %q)\n", mode)
		return 2
	}
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.Name(design), lib12, designs.Params{Scale: scale, Seed: seed})
	if err != nil {
		fmt.Fprintln(stderr, "designlint:", err)
		return 2
	}
	opt := core.DefaultOptions(clock)
	opt.Seed = seed
	opt.Check = cm
	opt.CheckReportOnly = true
	r, err := core.Run(context.Background(), src, core.ConfigName(config), opt)
	if err != nil {
		fmt.Fprintln(stderr, "designlint:", err)
		return 1
	}
	return printReports(stdout, fmt.Sprintf("%s/%s", design, config), r.Checks)
}

// printReports renders the summary table plus every retained finding and
// returns the process exit code.
func printReports(w io.Writer, label string, reps []*check.Report) int {
	report.CheckTable(fmt.Sprintf("Design-integrity checks — %s", label), reps).Render(w)
	errs := 0
	for _, rep := range reps {
		errs += rep.Count(check.Error)
		for _, v := range rep.Violations {
			if rep.Stage != "" {
				fmt.Fprintf(w, "%s: %s\n", rep.Stage, v)
			} else {
				fmt.Fprintln(w, v)
			}
		}
	}
	if errs > 0 {
		fmt.Fprintf(w, "designlint: %d error-severity finding(s)\n", errs)
		return 1
	}
	return 0
}
