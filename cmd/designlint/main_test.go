package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixture(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"ERC-002", "ERC-008", "DRC-003", "TDR-002", "ENG-001"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("catalog missing %s", want)
		}
	}
}

func TestVerilogViolating(t *testing.T) {
	// The parser's own Validate rejects undriven/multi-driven nets, so the
	// fixture carries the defects it admits: a declared-but-unused wire
	// (ERC-001), u0's floating input A (ERC-004), and the u1/u2 inverter
	// cycle (ERC-008, error severity — drives the exit code).
	path := writeFixture(t, "bad.v", `
module bad (in, out);
  input in;
  output out;
  wire n_dangle;
  wire n1;
  wire n2;
  INV_X1_12T u0 (.Y(out));
  INV_X1_12T u1 (.A(n2), .Y(n1));
  INV_X1_12T u2 (.A(n1), .Y(n2));
endmodule
`)
	var out, errOut strings.Builder
	code := run([]string{"-verilog", path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"ERC-001", "ERC-004", "ERC-008"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %s:\n%s", want, out.String())
		}
	}
}

func TestVerilogClean(t *testing.T) {
	path := writeFixture(t, "ok.v", `
module ok (in, out);
  input in;
  output out;
  wire mid;
  INV_X1_12T u0 (.A(in), .Y(mid));
  INV_X1_12T u1 (.A(mid), .Y(out));
endmodule
`)
	var out, errOut strings.Builder
	if code := run([]string{"-verilog", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no mode: exit = %d", code)
	}
	if code := run([]string{"-verilog", filepath.Join(t.TempDir(), "missing.v")}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit = %d", code)
	}
	if code := run([]string{"-design", "cpu", "-check", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad check mode: exit = %d", code)
	}
}

func TestFlowMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full implementation flow")
	}
	var out, errOut strings.Builder
	code := run([]string{"-design", "ldpc", "-config", "2D-12T", "-scale", "0.1", "-check", "fast"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "signoff") {
		t.Errorf("missing signoff boundary row:\n%s", out.String())
	}
}
