// Command designdb inspects, verifies, and converts the repository's
// binary file formats: design databases ("H3DB", written by
// hetero3d/ppac -save-design) and evaluation journals ("H3CK", the
// binary sibling of the JSONL checkpoint).
//
// Usage:
//
//	designdb inspect file.db...
//	designdb verify file.db...
//	designdb convert src dst
//
// inspect prints each file's kind, format version, section framing
// (tag, offset, payload size, CRC), and — for design databases — the
// design, configuration, and save boundary from the META section.
//
// verify decodes each design database and re-encodes it, requiring the
// bytes to match exactly: the canonical-encoding invariant every writer
// in the tree maintains and CI enforces over the committed golden
// fixtures. Evaluation journals are verified by a full parse (header
// first, every frame CRC-checked).
//
// convert translates an evaluation checkpoint between the JSONL and
// binary framings; the destination format follows dst's extension
// (.db/.bin = binary). Converted journals resume exactly where the
// original did.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eval"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "inspect":
		err = inspect(args)
	case "verify":
		err = verify(args)
	case "convert":
		err = convert(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "designdb: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "designdb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  designdb inspect file.db...   list sections of design databases / evaluation journals
  designdb verify file.db...    decode + re-encode, require byte-identical canonical form
  designdb convert src dst      translate an evaluation checkpoint (JSONL <-> binary)
`)
}

func kindName(magic string) string {
	switch magic {
	case db.MagicDesign:
		return "design database"
	case db.MagicJournal:
		return "evaluation journal"
	}
	return "unknown"
}

func inspect(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("inspect: no files given")
	}
	for i, path := range paths {
		if i > 0 {
			fmt.Println()
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		magic, secs, err := db.List(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: %s (magic %q, format v%d, %d bytes, %d sections)\n",
			path, kindName(magic), magic, db.FormatVersion, len(data), len(secs))
		if magic == db.MagicDesign {
			design, config, stage, err := core.DesignFileInfo(data)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Printf("  design %s in %s, saved after %q\n", design, config, stage)
		}
		fmt.Printf("  %-6s %10s %10s %10s\n", "tag", "offset", "bytes", "crc32")
		for _, s := range secs {
			fmt.Printf("  %-6s %10d %10d   %08x\n", s.Tag, s.Offset, s.Len, s.CRC)
		}
	}
	return nil
}

func verify(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("verify: no files given")
	}
	bad := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		magic, _, err := db.List(data)
		if err == nil {
			switch magic {
			case db.MagicDesign:
				err = core.VerifyDesignFile(data)
			case db.MagicJournal:
				err = eval.VerifyJournal(data)
			}
		}
		if err != nil {
			bad++
			fmt.Printf("%s: FAIL: %v\n", path, err)
			continue
		}
		fmt.Printf("%s: ok (%s, %d bytes)\n", path, kindName(magic), len(data))
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d file(s) failed verification", bad, len(paths))
	}
	return nil
}

func convert(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("convert: want src and dst, got %d argument(s)", len(args))
	}
	src, dst := args[0], args[1]
	if err := eval.ConvertCheckpoint(src, dst); err != nil {
		return err
	}
	from, to := "JSONL", "binary"
	if strings.HasSuffix(src, ".db") || strings.HasSuffix(src, ".bin") {
		from = "binary"
	}
	if !strings.HasSuffix(dst, ".db") && !strings.HasSuffix(dst, ".bin") {
		to = "JSONL"
	}
	fmt.Printf("converted %s (%s) -> %s (%s)\n", src, from, dst, to)
	return nil
}
