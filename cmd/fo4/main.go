// Command fo4 runs the paper's FO-4 boundary-cell study on the
// switch-level simulator and prints Tables II and III: the slew, delay,
// leakage, and power shifts caused by heterogeneous driver/load and
// driver-input voltage combinations (Fig. 2).
//
// Usage:
//
//	fo4 [-dt 0.00005] [-slew 0.016]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/spice"
	"repro/internal/tech"
)

func main() {
	var (
		dt   = flag.Float64("dt", 0, "integration step in ns (0 = default)")
		slew = flag.Float64("slew", 0, "input ramp time in ns (0 = default)")
	)
	flag.Parse()

	opt := spice.DefaultSimOptions()
	if *dt > 0 {
		opt.Dt = *dt
	}
	if *slew > 0 {
		opt.InputSlew = *slew
	}

	fast, slow := tech.Variant12T(), tech.Variant9T()
	fmt.Printf("libraries: fast = %v @ %.2f V, slow = %v @ %.2f V\n",
		fast.Track, fast.VDD, slow.Track, slow.VDD)
	fmt.Printf("level-shifter-free: %v (V_DDH − V_DDL = %.2f V < 0.3 × V_DDH = %.2f V)\n\n",
		spice.VoltageCompatible(fast, slow), fast.VDD-slow.VDD, 0.3*fast.VDD)

	t2, err := eval.TableII()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fo4:", err)
		os.Exit(1)
	}
	fmt.Println(t2)

	t3, err := eval.TableIII()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fo4:", err)
		os.Exit(1)
	}
	fmt.Println(t3)
}
