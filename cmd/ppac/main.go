// Command ppac runs the paper's full evaluation — every design in every
// configuration at its 2D-12T f_max — and prints Tables I, VI, VII, and
// VIII plus the figure summaries. The per-design f_max searches and the
// 5×4 configuration sweep execute on a bounded worker pool; results are
// identical at any worker count.
//
// Usage:
//
//	ppac [-scale 0.25] [-seed 1] [-designs netcard,aes,ldpc,cpu] [-svg dir]
//	     [-workers 0] [-flow-workers 0] [-timeout 0] [-stage-report] [-timer-stats]
//	     [-check off|fast|full] [-fault spec] [-checkpoint file]
//	     [-retries n] [-resilience] [-resume-from-place dir]
//	     [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-v]
//
// -check runs the design-integrity checker (internal/check) at stage
// boundaries of every implementation; Error-severity findings fail the
// run, and a per-boundary summary table prints after the paper tables.
//
// -fault arms the deterministic fault-injection harness (internal/fault):
// a comma-separated list of design/config/stage[@occurrence]=class
// injections, e.g. "cpu/Hetero-M3D/eco=corrupt:extraction-cache" or
// "*/*/cts@1=error:retryable". -retries re-attempts flows that fail with
// transient errors; -checkpoint journals completed flows so an
// interrupted evaluation resumes without repeating work (a .db or .bin
// path selects the compact binary journal, anything else JSONL — both
// resume interchangeably and the designdb tool converts between them);
// -resilience prints the per-flow fault/retry/degradation table.
//
// -resume-from-place splits every configuration flow in two at the
// placement boundary through the binary design database: each flow saves
// its design into the named directory after placement, then a second run
// loads the file and finishes the remaining stages. Results are
// byte-identical to uninterrupted flows; the saved databases stay on
// disk for designdb inspect/verify.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/prof"
	"repro/internal/report"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.25, "design scale (1.0 = paper-size netlists)")
		seed     = flag.Int64("seed", 1, "generation/partitioning seed")
		designL  = flag.String("designs", "", "comma-separated subset of netcard,aes,ldpc,cpu (default all)")
		svgDir   = flag.String("svg", "", "write Fig. 3/4 SVGs to this directory")
		workers  = flag.Int("workers", 0, "concurrent flow jobs (0 = GOMAXPROCS, 1 = serial)")
		flowWork = flag.Int("flow-workers", 0, "intra-flow parallelism of the place/route/STA/CTS kernels (0 = budget against -workers, 1 = serial); results are identical at any value")
		timeout  = flag.Duration("timeout", 0, "abort the whole evaluation after this long, e.g. 5m (0 = no limit)")
		stageRep = flag.Bool("stage-report", false, "print the per-stage wall-time table after the evaluation")
		timerSt  = flag.Bool("timer-stats", false, "print the timing-engine update and RC-cache statistics table")
		checkM   = flag.String("check", "off", "design-integrity checks at stage boundaries: off, fast (signoff only), or full; error findings fail the run")
		faultS   = flag.String("fault", "", "fault-injection spec: design/config/stage[@occ]=class[:modifier],... (classes: panic, error, cancel, timeout, corrupt)")
		ckptPath = flag.String("checkpoint", "", "journal completed flows to this file and resume from it on rerun")
		retries  = flag.Int("retries", 1, "attempts per flow for transient failures (1 = no retries)")
		resil    = flag.Bool("resilience", false, "print the per-flow fault/retry/degradation table after the evaluation")
		resume   = flag.String("resume-from-place", "", "save every flow's design database into this directory after placement, then resume it from the file (proves save/load determinism)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the evaluation to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile (pprof \"allocs\") to this file on exit")
		verbose  = flag.Bool("v", false, "log every pipeline stage as it completes")
	)
	flag.Parse()

	sess, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppac:", err)
		os.Exit(2)
	}
	defer func() {
		if err := sess.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ppac:", err)
		}
	}()

	checkMode, err := core.ParseCheckMode(*checkM)
	if err != nil {
		sess.Stop()
		fmt.Fprintln(os.Stderr, "ppac:", err)
		os.Exit(2)
	}
	plan, err := fault.ParseSpec(*faultS)
	if err != nil {
		sess.Stop()
		fmt.Fprintln(os.Stderr, "ppac:", err)
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sink := &eval.LogSink{W: os.Stdout, Stages: *verbose}
	defer sink.Close()
	opt := eval.DefaultSuiteOptions(*scale)
	opt.Seed = *seed
	opt.Workers = *workers
	opt.FlowWorkers = *flowWork
	opt.Check = checkMode
	opt.Events = sink
	opt.Checkpoint = *ckptPath
	opt.ResumeFromPlace = *resume
	if *retries > 1 {
		opt.Retry = flow.DefaultRetryPolicy(*retries)
	}
	if plan != nil {
		opt.Fault = plan.Hook()
	}
	if *designL != "" {
		opt.Designs = nil
		for _, n := range strings.Split(*designL, ",") {
			opt.Designs = append(opt.Designs, designs.Name(strings.TrimSpace(n)))
		}
	}

	s, err := eval.RunSuite(ctx, opt)
	if err != nil {
		sess.Stop()
		fmt.Fprintln(os.Stderr, "ppac:", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Println(report.Fig1())
	fmt.Println(s.TableI())
	fmt.Println(s.TableVI())
	fmt.Println(s.TableVII())

	hasCPU := false
	for _, n := range opt.Designs {
		if n == designs.CPU {
			hasCPU = true
		}
	}
	if hasCPU {
		t8, err := s.TableVIII()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppac: Table VIII:", err)
		} else {
			fmt.Println(t8)
		}
		f3, err := s.Fig3(*svgDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppac: Fig. 3:", err)
		} else {
			fmt.Println(f3)
		}
		f4, err := s.Fig4(*svgDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppac: Fig. 4:", err)
		} else {
			fmt.Println(f4)
		}
	}

	if *stageRep {
		fmt.Println(s.StageReport())
	}
	if *timerSt {
		fmt.Println(s.EngineReport())
	}
	if *resil {
		fmt.Println(s.ResilienceReport())
	}
	if checkMode != core.CheckOff {
		fmt.Println(s.CheckReport())
	}
}
