// Command evalfarm runs the paper's evaluation as a crash-safe farm of
// worker processes (internal/shard): the design×config matrix is split
// into shards, each shard is leased to a worker OS process writing its
// own checkpoint journal, and a supervisor watchdog restarts workers
// that crash or stall. The shard journals merge into one canonical
// journal whose Tables I–VIII are byte-identical to a single-process
// ppac run — the merge refuses divergent duplicates, so the farm is
// also a cross-process determinism check.
//
// Usage:
//
//	evalfarm [-scale 0.1] [-seed 1] [-fmax-iters 3] [-dir evalfarm-work]
//	         [-shards 4] [-procs 0] [-binary] [-stall-timeout 30s]
//	         [-max-restarts 2] [-workers 0] [-flow-workers 0]
//	         [-check off|fast|full] [-out dir]
//	         [-chaos-kill 1,3] [-chaos-stall 'aes/*/cts'] [-v]
//
// -out renders all eight paper tables into the directory (table_i.txt …
// table_viii.txt, the golden filenames), so CI can diff a chaos-ridden
// farm run byte-for-byte against the committed single-process goldens.
//
// The chaos flags exist for the crash-safety tests and CI: -chaos-kill
// SIGKILLs the named shards once their journal holds work (first
// attempt only), and -chaos-stall arms a stall fault at the given
// design/config/stage site so the watchdog's kill path runs. A farm
// that restarts every killed shard and still renders golden-identical
// tables is the acceptance bar.
//
// The binary re-invokes itself as the worker: when EVALFARM_SPEC is set
// in the environment it runs that shard and exits, touching nothing but
// its own journal.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/shard"
)

func main() {
	// Worker mode: the supervisor set EVALFARM_SPEC in our environment.
	if spec, ok, err := shard.SpecFromEnv(); ok {
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalfarm worker:", err)
			os.Exit(2)
		}
		if err := shard.RunWorker(context.Background(), spec); err != nil {
			fmt.Fprintln(os.Stderr, "evalfarm worker:", err)
			os.Exit(1)
		}
		return
	}

	var (
		scale     = flag.Float64("scale", 0.1, "design scale (1.0 = paper-size netlists)")
		seed      = flag.Int64("seed", 1, "generation/partitioning seed")
		fmaxIters = flag.Int("fmax-iters", 3, "per-design f_max search iterations")
		dir       = flag.String("dir", "evalfarm-work", "working directory for every journal of the farm")
		shards    = flag.Int("shards", 4, "number of shards to split the matrix into")
		procs     = flag.Int("procs", 0, "concurrent worker processes (0 = one per shard)")
		binary    = flag.Bool("binary", false, "use the compact binary journal framing (.db) instead of JSONL")
		stallTO   = flag.Duration("stall-timeout", 30*time.Second, "kill a worker whose journal stops growing for this long")
		maxRest   = flag.Int("max-restarts", 2, "restarts allowed per shard before the farm fails")
		workers   = flag.Int("workers", 0, "suite workers inside each worker process (0 = GOMAXPROCS)")
		flowWork  = flag.Int("flow-workers", 0, "intra-flow parallelism inside each worker process")
		checkM    = flag.String("check", "off", "design-integrity checks at stage boundaries: off, fast, or full")
		outDir    = flag.String("out", "", "render Tables I-VIII into this directory (golden filenames)")
		chaosKill = flag.String("chaos-kill", "", "comma-separated shard indices to SIGKILL once they show progress (first attempt only)")
		chaosStal = flag.String("chaos-stall", "", "stall site design/config/stage — wedges the matching stage on first attempts until the watchdog kills the worker")
		verbose   = flag.Bool("v", false, "log supervisor events")
	)
	flag.Parse()

	checkMode, err := core.ParseCheckMode(*checkM)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalfarm:", err)
		os.Exit(2)
	}
	var chaos shard.Chaos
	if *chaosKill != "" {
		for _, f := range strings.Split(*chaosKill, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "evalfarm: -chaos-kill %q: want non-negative shard indices\n", *chaosKill)
				os.Exit(2)
			}
			chaos.Kill = append(chaos.Kill, n)
		}
	}
	if *chaosStal != "" {
		chaos.FaultSpec = *chaosStal + "=stall"
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalfarm:", err)
		os.Exit(1)
	}

	opt := eval.DefaultSuiteOptions(*scale)
	opt.Seed = *seed
	opt.FmaxIterations = *fmaxIters
	opt.Workers = *workers
	opt.FlowWorkers = *flowWork
	opt.Check = checkMode

	o := shard.Options{
		Suite:        opt,
		Dir:          *dir,
		Shards:       *shards,
		Procs:        *procs,
		Binary:       *binary,
		StallTimeout: *stallTO,
		MaxRestarts:  *maxRest,
		Chaos:        chaos,
		Command: func(string) (*exec.Cmd, error) {
			return exec.Command(exe), nil
		},
	}
	if *verbose {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "evalfarm: "+format+"\n", args...)
		}
	}

	farm, err := shard.Run(context.Background(), o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalfarm:", err)
		os.Exit(1)
	}

	fmt.Println(farm.Report())
	fmt.Println(farm.Suite.ResilienceReport())
	fmt.Printf("farm counters: restarts=%d expiries=%d quarantines=%d\n",
		farm.Restarts, farm.Expiries, farm.Quarantines)

	if *outDir != "" {
		if err := writeTables(farm.Suite, *outDir); err != nil {
			fmt.Fprintln(os.Stderr, "evalfarm:", err)
			os.Exit(1)
		}
		fmt.Printf("tables written to %s\n", *outDir)
	}
}

// writeTables renders all eight paper tables under dir with the golden
// test's filenames, so `diff -r` against internal/eval/testdata/golden
// is the byte-identity check.
func writeTables(s *eval.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	t2, err := eval.TableII()
	if err != nil {
		return err
	}
	t3, err := eval.TableIII()
	if err != nil {
		return err
	}
	t5, err := eval.TableV(s.Opt.Scale, s.Opt.Seed)
	if err != nil {
		return err
	}
	t8, err := s.TableVIII()
	if err != nil {
		return err
	}
	renders := []struct {
		name, body string
	}{
		{"table_i.txt", s.TableI().String()},
		{"table_ii.txt", t2.String()},
		{"table_iii.txt", t3.String()},
		{"table_iv.txt", eval.TableIV().String()},
		{"table_v.txt", t5.String()},
		{"table_vi.txt", s.TableVI().String()},
		{"table_vii.txt", s.TableVII().String()},
		{"table_viii.txt", t8.String()},
	}
	for _, r := range renders {
		if err := os.WriteFile(filepath.Join(dir, r.name), []byte(r.body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
