// Command benchdiff compares two benchmark baseline files (the
// committed BENCH_*.json documents) metric by metric and fails on
// regressions beyond a noise bound. It renders a trajectory table —
// old value, new value, delta — for every numeric metric, classifies
// each metric's direction from its name (ns_per_op, _ms, bytes_per_op,
// allocs_per_op shrink; mb_per_s, speedup grow), and exits non-zero
// when any gated metric moved the wrong way by more than the
// tolerance. Metrics whose direction the name does not reveal are
// reported as informational and never gate.
//
// Usage:
//
//	benchdiff [-tol 0.10] old.json new.json
//
// The noise bound is multiplicative (-tol 0.10 = 10% drift allowed)
// plus small absolute floors for the near-zero counters
// (allocs_per_op, bytes_per_op) so GC jitter around zero never flags.
// A file compared against itself always passes — the CI gate runs
// every committed baseline through that identity check, so a schema
// change that breaks parsing fails loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/report"
)

// benchFile is the shared shape of every BENCH_*.json document: free
// metadata plus a section of named entries whose numeric fields are the
// metrics. Two section names are in use ("benchmarks" for the
// micro-benchmark baselines, "runs" for the whole-flow profiles);
// nested objects flatten to dotted metrics ("before.wall_s").
type benchFile struct {
	Description string                    `json:"description"`
	Date        string                    `json:"date"`
	Benchmarks  map[string]map[string]any `json:"-"`
}

func loadBench(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	var raw struct {
		Description string         `json:"description"`
		Date        string         `json:"date"`
		Benchmarks  map[string]any `json:"benchmarks"`
		Runs        map[string]any `json:"runs"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	f.Description, f.Date = raw.Description, raw.Date
	section := raw.Benchmarks
	if len(section) == 0 {
		section = raw.Runs
	}
	if len(section) == 0 {
		return f, fmt.Errorf("%s: no benchmarks or runs section", path)
	}
	f.Benchmarks = make(map[string]map[string]any, len(section))
	for name, v := range section {
		entry, ok := v.(map[string]any)
		if !ok {
			continue
		}
		flat := make(map[string]any)
		flatten("", entry, flat)
		f.Benchmarks[name] = flat
	}
	return f, nil
}

// flatten copies entry's fields into out, prefixing nested objects'
// fields with "parent." so every metric is one level deep.
func flatten(prefix string, entry map[string]any, out map[string]any) {
	for k, v := range entry {
		key := prefix + k
		if nested, ok := v.(map[string]any); ok {
			flatten(key+".", nested, out)
			continue
		}
		out[key] = v
	}
}

// direction classifies a metric by name: -1 lower-is-better, +1
// higher-is-better, 0 unknown (informational only). Higher-better
// patterns are matched first because "mb_per_s" also ends in "_s".
func direction(metric string) int {
	if i := strings.LastIndexByte(metric, '.'); i >= 0 {
		metric = metric[i+1:] // "before.wall_s" classifies as "wall_s"
	}
	switch {
	case strings.Contains(metric, "mb_per_s"),
		strings.Contains(metric, "speedup"):
		return +1
	case strings.Contains(metric, "ns_per_op"),
		strings.Contains(metric, "bytes_per_op"),
		strings.Contains(metric, "allocs_per_op"),
		strings.HasSuffix(metric, "_ms"),
		strings.HasSuffix(metric, "_s"),
		strings.HasSuffix(metric, "_mb"):
		return -1
	}
	return 0
}

// floor is the absolute slack added to the noise bound for counters
// that sit near zero, where a multiplicative tolerance is meaningless.
func floor(metric string) float64 {
	switch {
	case strings.Contains(metric, "allocs_per_op"):
		return 4
	case strings.Contains(metric, "bytes_per_op"):
		return 512
	}
	return 0
}

// row is one metric's trajectory.
type row struct {
	Bench, Metric string
	Old, New      float64
	HasNew        bool
	Status        string // "ok", "improved", "info", "new", "REGRESSED", "MISSING"
}

// delta returns the relative change in percent.
func (r row) delta() float64 {
	if r.Old == 0 {
		return 0
	}
	return (r.New - r.Old) / r.Old * 100
}

// diffBench compares every numeric metric of old against new under the
// noise bound tol, returning the trajectory rows (sorted by benchmark,
// then metric) and the number of gating failures. A benchmark or gated
// metric that disappeared counts as a failure — a deleted baseline
// must be deleted deliberately, not dropped silently.
func diffBench(oldF, newF benchFile, tol float64) (rows []row, failures int) {
	for bench, oldMetrics := range oldF.Benchmarks {
		newMetrics := newF.Benchmarks[bench]
		for metric, ov := range oldMetrics {
			oldVal, ok := asFloat(ov)
			if !ok {
				continue // workload strings etc.
			}
			r := row{Bench: bench, Metric: metric, Old: oldVal}
			dir := direction(metric)
			nv, present := newMetrics[metric]
			newVal, numeric := asFloat(nv)
			switch {
			case !present || !numeric:
				if dir == 0 {
					continue // informational metric dropped: not gated
				}
				r.Status = "MISSING"
				failures++
			default:
				r.New, r.HasNew = newVal, true
				switch {
				case dir == 0:
					r.Status = "info"
				case dir < 0 && newVal > oldVal*(1+tol)+floor(metric):
					r.Status = "REGRESSED"
					failures++
				case dir > 0 && newVal < oldVal*(1-tol)-floor(metric):
					r.Status = "REGRESSED"
					failures++
				case (dir < 0 && newVal < oldVal) || (dir > 0 && newVal > oldVal):
					r.Status = "improved"
				default:
					r.Status = "ok"
				}
			}
			rows = append(rows, r)
		}
		// Metrics that exist only in the new file are surfaced, never
		// gated: a new measurement is information, not a regression.
		for metric, nv := range newMetrics {
			if _, had := oldMetrics[metric]; had {
				continue
			}
			if newVal, ok := asFloat(nv); ok {
				rows = append(rows, row{Bench: bench, Metric: metric, New: newVal, HasNew: true, Status: "new"})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bench != rows[j].Bench {
			return rows[i].Bench < rows[j].Bench
		}
		return rows[i].Metric < rows[j].Metric
	})
	return rows, failures
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

// trajectoryTable renders the comparison.
func trajectoryTable(title string, rows []row) *report.Table {
	t := report.NewTable(title, "Benchmark", "Metric", "Old", "New", "Delta", "Status")
	for _, r := range rows {
		newCell, deltaCell := "-", "-"
		if r.HasNew {
			newCell = trim(r.New)
			if r.Old != 0 {
				deltaCell = fmt.Sprintf("%+.1f%%", r.delta())
			}
		}
		oldCell := "-"
		if !(r.Status == "new") {
			oldCell = trim(r.Old)
		}
		t.AddRowf(r.Bench, r.Metric, oldCell, newCell, deltaCell, r.Status)
	}
	return t
}

func trim(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

func main() {
	tol := flag.Float64("tol", 0.10, "relative noise bound per metric (0.10 = 10%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.10] old.json new.json")
		os.Exit(2)
	}
	oldF, err := loadBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newF, err := loadBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	rows, failures := diffBench(oldF, newF, *tol)
	title := fmt.Sprintf("Benchmark trajectory — %s vs %s (noise bound %.0f%%)",
		flag.Arg(0), flag.Arg(1), *tol*100)
	fmt.Println(trajectoryTable(title, rows))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond the %.0f%% noise bound\n", failures, *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d metric(s) within bounds\n", len(rows))
}
