package main

import (
	"os"
	"path/filepath"
	"testing"
)

func bench(metrics map[string]any) benchFile {
	return benchFile{Benchmarks: map[string]map[string]any{"BenchmarkX": metrics}}
}

func countStatus(rows []row, status string) int {
	n := 0
	for _, r := range rows {
		if r.Status == status {
			n++
		}
	}
	return n
}

func TestIdenticalFilesPass(t *testing.T) {
	f := bench(map[string]any{
		"ns_per_op": 1000.0, "mb_per_s": 50.0, "workload": "a string",
	})
	rows, failures := diffBench(f, f, 0.10)
	if failures != 0 {
		t.Fatalf("self-compare: %d failures, want 0", failures)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (string metric skipped)", len(rows))
	}
}

func TestSlowdownBeyondBoundFails(t *testing.T) {
	old := bench(map[string]any{"ns_per_op": 1000.0})
	new_ := bench(map[string]any{"ns_per_op": 1200.0}) // +20% > 10% bound
	rows, failures := diffBench(old, new_, 0.10)
	if failures != 1 || countStatus(rows, "REGRESSED") != 1 {
		t.Fatalf("want 1 regression, got failures=%d rows=%+v", failures, rows)
	}
	// Within the bound: passes.
	new_ = bench(map[string]any{"ns_per_op": 1090.0})
	if _, failures := diffBench(old, new_, 0.10); failures != 0 {
		t.Fatalf("9%% drift flagged at a 10%% bound")
	}
}

func TestHigherBetterDirection(t *testing.T) {
	old := bench(map[string]any{"speedup": 100.0})
	faster := bench(map[string]any{"speedup": 150.0})
	rows, failures := diffBench(old, faster, 0.10)
	if failures != 0 || countStatus(rows, "improved") != 1 {
		t.Fatalf("higher speedup flagged: failures=%d rows=%+v", failures, rows)
	}
	slower := bench(map[string]any{"speedup": 80.0}) // -20%
	if _, failures := diffBench(old, slower, 0.10); failures != 1 {
		t.Fatalf("speedup drop not flagged")
	}
}

func TestAbsoluteFloorAbsorbsJitterNearZero(t *testing.T) {
	old := bench(map[string]any{"allocs_per_op": 0.0, "bytes_per_op": 0.0})
	jitter := bench(map[string]any{"allocs_per_op": 3.0, "bytes_per_op": 400.0})
	if _, failures := diffBench(old, jitter, 0.10); failures != 0 {
		t.Fatalf("sub-floor jitter flagged as regression")
	}
	real_ := bench(map[string]any{"allocs_per_op": 50.0, "bytes_per_op": 9000.0})
	if _, failures := diffBench(old, real_, 0.10); failures != 2 {
		t.Fatalf("above-floor growth not flagged")
	}
}

func TestMissingGatedMetricFails(t *testing.T) {
	old := bench(map[string]any{"ns_per_op": 1000.0, "note": "info"})
	new_ := bench(map[string]any{})
	rows, failures := diffBench(old, new_, 0.10)
	if failures != 1 || countStatus(rows, "MISSING") != 1 {
		t.Fatalf("dropped gated metric not flagged: failures=%d rows=%+v", failures, rows)
	}
}

func TestNewMetricIsInformational(t *testing.T) {
	old := bench(map[string]any{"ns_per_op": 1000.0})
	new_ := bench(map[string]any{"ns_per_op": 1000.0, "mb_per_s": 10.0})
	rows, failures := diffBench(old, new_, 0.10)
	if failures != 0 || countStatus(rows, "new") != 1 {
		t.Fatalf("new metric gated or missing: failures=%d rows=%+v", failures, rows)
	}
}

// TestCommittedBaselinesSelfCompare runs the CI identity gate in-process
// over the repository's committed BENCH_*.json files: every baseline
// must parse and pass against itself.
func TestCommittedBaselinesSelfCompare(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed BENCH_*.json baselines found: %v", err)
	}
	for _, path := range matches {
		f, err := loadBench(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if _, failures := diffBench(f, f, 0.10); failures != 0 {
			t.Errorf("%s: self-compare failed", filepath.Base(path))
		}
	}
}

func TestLoadBenchRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"nojson.json":  "not json",
		"nobench.json": `{"description": "x"}`,
		"empty.json":   `{"benchmarks": {}}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadBench(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
