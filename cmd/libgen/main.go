// Command libgen writes the generated standard-cell libraries as Liberty
// (.lib) files — the 9-track and 12-track anchors by default, or any
// member of the interpolated 9–12-track family.
//
// Usage:
//
//	libgen [-tracks 9,12] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/cell"
	"repro/internal/tech"
)

func main() {
	var (
		tracks = flag.String("tracks", "9,12", "comma-separated track heights (9–12)")
		outDir = flag.String("out", "out/libs", "output directory")
	)
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "libgen:", err)
		os.Exit(1)
	}
	for _, txt := range strings.Split(*tracks, ",") {
		tr, err := strconv.Atoi(strings.TrimSpace(txt))
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen: bad track", txt)
			os.Exit(1)
		}
		v, err := tech.MakeVariant(tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		lib := cell.NewLibrary(v)
		path := filepath.Join(*outDir, fmt.Sprintf("hetero3d_%dt.lib", tr))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		if err := cell.WriteLiberty(f, lib); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d masters, VDD %.2f V, cell height %.1f tracks)\n",
			path, len(lib.Masters()), v.VDD, float64(tr))
	}
}
