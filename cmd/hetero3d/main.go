// Command hetero3d implements one of the paper's benchmark designs in a
// chosen configuration (2D-9T, 2D-12T, M3D-9T, M3D-12T, Hetero-M3D) and
// prints its PPAC record, optionally with the Table VIII-style deep dive
// and layout SVGs.
//
// Usage:
//
//	hetero3d -design cpu -config Hetero-M3D -scale 0.1 [-clock 1.2] [-deep] [-svg dir] [-verilog out.v]
//
// When -clock is omitted the tool first sweeps the design's 2D-12T f_max
// and uses it as the target, exactly like the paper's methodology.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/report"
	"repro/internal/tech"
)

func main() {
	var (
		design = flag.String("design", "cpu", "design: netcard, aes, ldpc, cpu")
		config = flag.String("config", string(core.ConfigHetero), "configuration: 2D-9T, 2D-12T, M3D-9T, M3D-12T, Hetero-M3D")
		scale  = flag.Float64("scale", 0.1, "design scale (1.0 = paper-size netlists)")
		clock  = flag.Float64("clock", 0, "target clock in GHz (0 = sweep 2D-12T f_max first)")
		seed   = flag.Int64("seed", 1, "generation/partitioning seed")
		deep   = flag.Bool("deep", false, "print the Table VIII-style deep dive")
		svgDir = flag.String("svg", "", "write per-tier layout SVGs to this directory")
		vlog   = flag.String("verilog", "", "write the implemented netlist (with physical attributes) to this file")
	)
	flag.Parse()

	if err := run(*design, *config, *scale, *clock, *seed, *deep, *svgDir, *vlog); err != nil {
		fmt.Fprintln(os.Stderr, "hetero3d:", err)
		os.Exit(1)
	}
}

func run(design, config string, scale, clock float64, seed int64, deep bool, svgDir, vlog string) error {
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.Name(design), lib12, designs.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	stats := src.ComputeStats()
	fmt.Printf("design %s: %d cells, %d macros, %d nets\n", design, stats.Cells, stats.Macros, stats.Nets)

	if clock <= 0 {
		fmt.Println("sweeping 2D-12T f_max...")
		fopt := core.DefaultFmaxOptions()
		fopt.Flow.Seed = seed
		clock, err = core.FindFmax(src, core.Config2D12T, fopt)
		if err != nil {
			return err
		}
		fmt.Printf("f_max(2D-12T) = %.3f GHz\n", clock)
	}

	opt := core.DefaultOptions(clock)
	opt.Seed = seed
	r, err := core.Run(src, core.ConfigName(config), opt)
	if err != nil {
		return err
	}
	p := r.PPAC

	t := report.NewTable(fmt.Sprintf("PPAC — %s in %s @ %.3f GHz", design, config, clock), "Metric", "Value")
	t.AddRowf("Si area", fmt.Sprintf("%.4f mm²", p.SiAreaMM2))
	t.AddRowf("Footprint", fmt.Sprintf("%.4f mm² (%.0f µm wide)", p.FootprintMM2, p.ChipWidthUM))
	t.AddRowf("Density", fmt.Sprintf("%.0f %%", p.Density*100))
	t.AddRowf("Wirelength", fmt.Sprintf("%.3f m", p.WLm))
	t.AddRowf("MIVs", fmt.Sprint(p.MIVs))
	t.AddRowf("Total power", fmt.Sprintf("%.2f mW (leak %.2f, clock %.2f)", p.PowerMW, p.LeakageMW, p.ClockPowerMW))
	t.AddRowf("WNS / TNS", fmt.Sprintf("%+.3f / %+.2f ns", p.WNS, p.TNS))
	t.AddRowf("Timing met", fmt.Sprint(p.TimingMet()))
	t.AddRowf("Effective delay", fmt.Sprintf("%.3f ns", p.EffDelayNS))
	t.AddRowf("PDP", fmt.Sprintf("%.2f pJ", p.PDPpJ))
	t.AddRowf("Die cost", fmt.Sprintf("%.3f ×10⁻⁶C'", p.DieCostMicroC))
	t.AddRowf("Cost per cm²", fmt.Sprintf("%.1f ×10⁻⁶C'", p.CostPerCm2))
	t.AddRowf("PPC", fmt.Sprintf("%.3f GHz/(W·10⁻⁶C')", p.PPC))
	t.AddRowf("Flow notes", p.Refinement)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	if deep {
		dd, err := core.DeepAnalyze(r)
		if err != nil {
			return err
		}
		dt := report.NewTable("Deep dive (Table VIII metrics)", "Metric", "Value")
		dt.AddRowf("Clock buffers", fmt.Sprintf("%d (top %d / bottom %d)", dd.ClockBuffers, dd.TopBuffers, dd.BottomBuffers))
		dt.AddRowf("Clock buffer area", fmt.Sprintf("%.0f µm²", dd.ClockBufferAreaUM2))
		dt.AddRowf("Clock max latency / skew", fmt.Sprintf("%.3f / %.3f ns", dd.ClockMaxLatencyNS, dd.ClockMaxSkewNS))
		dt.AddRowf("100-path avg skew", fmt.Sprintf("%+.4f ns", dd.AvgSkew100NS))
		dt.AddRowf("Critical path", fmt.Sprintf("%d cells (%d top / %d bottom), %d MIVs",
			dd.PathCells, dd.TopCells, dd.BottomCells, dd.PathMIVs))
		dt.AddRowf("Path delay", fmt.Sprintf("%.3f ns (cell %.3f, wire %.3f)", dd.PathDelayNS, dd.CellDelayNS, dd.WireDelayNS))
		dt.AddRowf("Avg stage delay top/bottom", fmt.Sprintf("%.1f / %.1f ps", dd.AvgTopDelayNS*1000, dd.AvgBotDelayNS*1000))
		if dd.HasMacros {
			dt.AddRowf("Memory net latency in/out", fmt.Sprintf("%.2f / %.2f ps", dd.MemInLatencyPS, dd.MemOutLatencyPS))
			dt.AddRowf("Memory net switching", fmt.Sprintf("%.2f µW", dd.MemNetSwitchUW))
		}
		if err := dt.Render(os.Stdout); err != nil {
			return err
		}
	}

	if vlog != "" {
		f, err := os.Create(vlog)
		if err != nil {
			return err
		}
		if err := netlist.WriteVerilog(f, r.Design); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", vlog)
	}

	if svgDir != "" {
		tiers := core.ConfigName(config).Tiers()
		for ti := 0; ti < tiers; ti++ {
			svg := &report.LayoutSVG{Design: r.Design, Outline: r.Outline, Tier: tech.Tier(ti), Tiers: tiers}
			name := filepath.Join(svgDir, fmt.Sprintf("%s_%s_tier%d.svg", design, config, ti))
			if err := os.MkdirAll(svgDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := svg.Write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", name)

			hist, err := place.DensityMap(r.Design, r.Outline, tech.Tier(ti), tiers, 48, 24)
			if err != nil {
				return err
			}
			fmt.Printf("tier %d density map:\n%s", ti, report.AsciiDensity(hist))
		}
	}
	return nil
}
