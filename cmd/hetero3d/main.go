// Command hetero3d implements one of the paper's benchmark designs in one
// or more chosen configurations (2D-9T, 2D-12T, M3D-9T, M3D-12T,
// Hetero-M3D) and prints the PPAC record(s), optionally with the
// Table VIII-style deep dive, per-stage timing, and layout SVGs.
//
// Usage:
//
//	hetero3d -design cpu -config Hetero-M3D -scale 0.1 [-clock 1.2]
//	         [-deep] [-svg dir] [-verilog out.v] [-stage-report]
//	         [-timer-stats] [-check off|fast|full] [-fault spec]
//	         [-retries n] [-workers 0] [-timeout 0]
//	         [-save-design out.db] [-save-after place,cts] [-stop-after place]
//	         [-load-design in.db] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -config also accepts a comma-separated list or "all"; multiple
// configurations run concurrently on a worker pool bounded by -workers.
// The deep dive, SVG, and Verilog outputs apply when exactly one
// configuration is requested.
//
// -save-design writes the binary design database (internal/db) at the
// boundaries named by -save-after (default "place"); -load-design resumes
// a flow from such a file, skipping the saved stages, and finishes
// byte-identical to the uninterrupted run. -stop-after truncates the flow
// after the named stage — combine with -save-design to produce a snapshot
// without paying for the full flow. All three apply to single-config runs
// (a database records exactly one design in one configuration); inspect
// or verify the files with the designdb tool.
//
// -fault arms the deterministic fault-injection harness (internal/fault),
// e.g. -fault "cpu/Hetero-M3D/eco=corrupt:extraction-cache" or
// "*/*/cts=panic"; -retries re-attempts flows that fail with transient
// (retryable) errors under capped exponential backoff.
//
// When -clock is omitted the tool first sweeps the design's 2D-12T f_max
// and uses it as the target, exactly like the paper's methodology.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/place"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/tech"
)

func main() {
	var (
		design   = flag.String("design", "cpu", "design: netcard, aes, ldpc, cpu")
		config   = flag.String("config", string(core.ConfigHetero), "configuration(s): comma-separated subset of 2D-9T, 2D-12T, M3D-9T, M3D-12T, Hetero-M3D, or \"all\"")
		scale    = flag.Float64("scale", 0.1, "design scale (1.0 = paper-size netlists)")
		clock    = flag.Float64("clock", 0, "target clock in GHz (0 = sweep 2D-12T f_max first)")
		seed     = flag.Int64("seed", 1, "generation/partitioning seed")
		deep     = flag.Bool("deep", false, "print the Table VIII-style deep dive (single config)")
		svgDir   = flag.String("svg", "", "write per-tier layout SVGs to this directory (single config)")
		vlog     = flag.String("verilog", "", "write the implemented netlist (with physical attributes) to this file (single config)")
		workers  = flag.Int("workers", 0, "concurrent flow jobs for multi-config runs (0 = GOMAXPROCS)")
		flowWork = flag.Int("flow-workers", 0, "intra-flow parallelism of the place/route/STA/CTS kernels (0 = budget against -workers, 1 = serial); results are identical at any value")
		timeout  = flag.Duration("timeout", 0, "abort the run after this long, e.g. 2m (0 = no limit)")
		stageRep = flag.Bool("stage-report", false, "print the per-stage wall-time table of each flow")
		timerSt  = flag.Bool("timer-stats", false, "print each flow's timing-engine update and RC-cache statistics table")
		checkM   = flag.String("check", "off", "design-integrity checks at stage boundaries: off, fast (signoff only), or full; error findings fail the run")
		faultS   = flag.String("fault", "", "fault-injection spec: design/config/stage[@occ]=class[:modifier],... (classes: panic, error, cancel, timeout, corrupt)")
		retries  = flag.Int("retries", 1, "attempts per flow for transient failures (1 = no retries)")
		saveDB   = flag.String("save-design", "", "write the binary design database to this file at each -save-after boundary (single config)")
		saveAt   = flag.String("save-after", "", "comma-separated save boundaries for -save-design: map, place, legalize, cts, signoff (default place)")
		loadDB   = flag.String("load-design", "", "resume the flow from a design database written by -save-design (single config)")
		stopAt   = flag.String("stop-after", "", "truncate the flow after this stage, e.g. place (single config)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile (pprof \"allocs\") to this file on exit")
	)
	flag.Parse()

	sess, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetero3d:", err)
		os.Exit(2)
	}
	defer func() {
		if err := sess.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "hetero3d:", err)
		}
	}()

	checkMode, err := core.ParseCheckMode(*checkM)
	if err != nil {
		sess.Stop()
		fmt.Fprintln(os.Stderr, "hetero3d:", err)
		os.Exit(2)
	}
	plan, err := fault.ParseSpec(*faultS)
	if err != nil {
		sess.Stop()
		fmt.Fprintln(os.Stderr, "hetero3d:", err)
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	dbio := designIO{save: *saveDB, saveAfter: *saveAt, load: *loadDB, stop: *stopAt}
	if err := run(ctx, *design, *config, *scale, *clock, *seed, *workers, *flowWork, *deep, *stageRep, *timerSt, checkMode, plan, *retries, *svgDir, *vlog, dbio); err != nil {
		sess.Stop()
		fmt.Fprintln(os.Stderr, "hetero3d:", err)
		os.Exit(1)
	}
}

// designIO carries the save/load/stop flags of the binary design
// database into the flow options.
type designIO struct {
	save, saveAfter, load, stop string
}

func (d designIO) active() bool {
	return d.save != "" || d.load != "" || d.stop != ""
}

func parseConfigs(s string) []core.ConfigName {
	if strings.TrimSpace(s) == "all" {
		return append([]core.ConfigName{}, core.AllConfigs...)
	}
	var out []core.ConfigName
	for _, c := range strings.Split(s, ",") {
		out = append(out, core.ConfigName(strings.TrimSpace(c)))
	}
	return out
}

func run(ctx context.Context, design, config string, scale, clock float64, seed int64, workers, flowWorkers int, deep, stageRep, timerSt bool, checkMode core.CheckMode, plan *fault.Plan, retries int, svgDir, vlog string, dbio designIO) error {
	cfgs := parseConfigs(config)
	if dbio.active() && len(cfgs) != 1 {
		return fmt.Errorf("-save-design/-load-design/-stop-after apply to a single configuration, got %d", len(cfgs))
	}

	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.Name(design), lib12, designs.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	stats := src.ComputeStats()
	fmt.Printf("design %s: %d cells, %d macros, %d nets\n", design, stats.Cells, stats.Macros, stats.Nets)

	if clock <= 0 {
		fmt.Println("sweeping 2D-12T f_max...")
		fopt := core.DefaultFmaxOptions()
		fopt.Flow.Seed = seed
		if flowWorkers > 0 {
			fopt.Flow.FlowWorkers = flowWorkers
		}
		clock, err = core.FindFmax(ctx, src, core.Config2D12T, fopt)
		if err != nil {
			return err
		}
		fmt.Printf("f_max(2D-12T) = %.3f GHz\n", clock)
	}

	// Implement every requested configuration, fanning out on a worker
	// pool when more than one is asked for. Flows are deterministic, so
	// the printed results do not depend on the worker count.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if flowWorkers <= 0 {
		// Budget nested parallelism: config fan-out × intra-flow workers
		// stays within the machine.
		outer := workers
		if len(cfgs) < outer {
			outer = len(cfgs)
		}
		flowWorkers = par.Budget(runtime.GOMAXPROCS(0), outer)
	}
	policy := flow.NoRetry
	if retries > 1 {
		policy = flow.DefaultRetryPolicy(retries)
	}
	results := make([]*core.Result, len(cfgs))
	traces := make([]*flow.RetryTrace, len(cfgs))
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			opt := core.DefaultOptions(clock)
			opt.Seed = seed
			opt.Check = checkMode
			opt.FlowWorkers = flowWorkers
			opt.SaveDesign = dbio.save
			opt.SaveAfter = dbio.saveAfter
			opt.LoadDesign = dbio.load
			opt.StopAfter = dbio.stop
			if plan != nil {
				opt.Fault = plan.Hook()
			}
			results[i], traces[i], errs[i] = core.RunWithRetry(ctx, src, cfg, opt, policy)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s: %w", cfgs[i], err)
		}
	}

	for i, cfg := range cfgs {
		if err := printResult(design, string(cfg), clock, results[i], stageRep, timerSt); err != nil {
			return err
		}
		printHealth(string(cfg), results[i], traces[i])
		if checkMode != core.CheckOff {
			ct := report.CheckTable(fmt.Sprintf("Design-integrity checks — %s in %s", design, cfg), results[i].Checks)
			if err := ct.Render(os.Stdout); err != nil {
				return err
			}
		}
	}

	if len(cfgs) != 1 {
		return nil
	}
	return singleConfigExtras(design, string(cfgs[0]), results[0], deep, svgDir, vlog)
}

func printResult(design, config string, clock float64, r *core.Result, stageRep, timerSt bool) error {
	p := r.PPAC
	if p == nil {
		// The flow was truncated by -stop-after before signoff: there is
		// no PPAC record, only the stages that ran (and a saved database,
		// if -save-design was given).
		fmt.Printf("flow stopped after %q — no PPAC record (%d stage(s) ran)\n",
			r.Stages[len(r.Stages)-1].Name, len(r.Stages))
		return printStageTables(design, config, r, stageRep, timerSt)
	}
	t := report.NewTable(fmt.Sprintf("PPAC — %s in %s @ %.3f GHz", design, config, clock), "Metric", "Value")
	t.AddRowf("Si area", fmt.Sprintf("%.4f mm²", p.SiAreaMM2))
	t.AddRowf("Footprint", fmt.Sprintf("%.4f mm² (%.0f µm wide)", p.FootprintMM2, p.ChipWidthUM))
	t.AddRowf("Density", fmt.Sprintf("%.0f %%", p.Density*100))
	t.AddRowf("Wirelength", fmt.Sprintf("%.3f m", p.WLm))
	t.AddRowf("MIVs", fmt.Sprint(p.MIVs))
	t.AddRowf("Total power", fmt.Sprintf("%.2f mW (leak %.2f, clock %.2f)", p.PowerMW, p.LeakageMW, p.ClockPowerMW))
	t.AddRowf("WNS / TNS", fmt.Sprintf("%+.3f / %+.2f ns", p.WNS, p.TNS))
	t.AddRowf("Timing met", fmt.Sprint(p.TimingMet()))
	t.AddRowf("Effective delay", fmt.Sprintf("%.3f ns", p.EffDelayNS))
	t.AddRowf("PDP", fmt.Sprintf("%.2f pJ", p.PDPpJ))
	t.AddRowf("Die cost", fmt.Sprintf("%.3f ×10⁻⁶C'", p.DieCostMicroC))
	t.AddRowf("Cost per cm²", fmt.Sprintf("%.1f ×10⁻⁶C'", p.CostPerCm2))
	t.AddRowf("PPC", fmt.Sprintf("%.3f GHz/(W·10⁻⁶C')", p.PPC))
	t.AddRowf("Flow notes", p.Refinement)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return printStageTables(design, config, r, stageRep, timerSt)
}

func printStageTables(design, config string, r *core.Result, stageRep, timerSt bool) error {
	if stageRep {
		rows := make([]report.StageRow, 0, len(r.Stages))
		for _, m := range r.Stages {
			rows = append(rows, report.StageRow{Stage: m.Name, Runs: 1, Total: m.Wall, Max: m.Wall, Cells: m.Cells})
		}
		st := report.StageTimingTable(fmt.Sprintf("Pipeline stages — %s in %s", design, config), rows)
		if err := st.Render(os.Stdout); err != nil {
			return err
		}
	}

	if timerSt {
		rows := make([]report.EngineStatsRow, 0, len(r.Stages))
		for _, m := range r.Stages {
			if len(m.Stats) == 0 {
				continue
			}
			rows = append(rows, report.EngineStatsRow{
				Stage:       m.Name,
				Full:        m.Stats[flow.StatSTAFull],
				Incremental: m.Stats[flow.StatSTAIncr],
				Nodes:       m.Stats[flow.StatSTANodes],
				RCHits:      m.Stats[flow.StatRCHits],
				RCMisses:    m.Stats[flow.StatRCMisses],
				ParBatches:  m.Stats[flow.StatParBatches],
				ParTasks:    m.Stats[flow.StatParTasks],
				Retries:     m.Stats[flow.StatCongestionRetries],
				Faults:      m.Stats[flow.StatFaultsInjected],
				Reruns:      m.Stats[flow.StatStageReruns],
				Degraded:    m.Stats[flow.StatDegradeFullSTA] + m.Stats[flow.StatDegradeUtil],
				Panics:      m.Stats[flow.StatPanicsRecovered],
			})
		}
		et := report.EngineStatsTable(fmt.Sprintf("Timing engine — %s in %s", design, config), rows)
		if err := et.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// printHealth reports an eventful flow's robustness outcome: injected
// faults, degraded-mode completion, and retry attempts. Clean flows print
// nothing (and the CI fault-injection smoke greps for these lines).
func printHealth(config string, r *core.Result, trace *flow.RetryTrace) {
	var faults, reruns, panics int64
	for _, m := range r.Stages {
		faults += m.Stats[flow.StatFaultsInjected]
		reruns += m.Stats[flow.StatStageReruns]
		panics += m.Stats[flow.StatPanicsRecovered]
	}
	attempts := 1
	if trace != nil {
		attempts = trace.Attempts
	}
	if faults == 0 && reruns == 0 && panics == 0 && attempts <= 1 && len(r.Degraded) == 0 {
		return
	}
	fmt.Printf("resilience [%s]: %d fault(s) injected, %d stage re-run(s), %d panic(s) recovered, %d attempt(s), degradations: %d %v\n",
		config, faults, reruns, panics, attempts, len(r.Degraded), r.Degraded)
}

func singleConfigExtras(design, config string, r *core.Result, deep bool, svgDir, vlog string) error {
	if r.PPAC == nil {
		// A -stop-after run has no signoff state to dive into or draw.
		return nil
	}
	if deep {
		dd, err := core.DeepAnalyze(r)
		if err != nil {
			return err
		}
		dt := report.NewTable("Deep dive (Table VIII metrics)", "Metric", "Value")
		dt.AddRowf("Clock buffers", fmt.Sprintf("%d (top %d / bottom %d)", dd.ClockBuffers, dd.TopBuffers, dd.BottomBuffers))
		dt.AddRowf("Clock buffer area", fmt.Sprintf("%.0f µm²", dd.ClockBufferAreaUM2))
		dt.AddRowf("Clock max latency / skew", fmt.Sprintf("%.3f / %.3f ns", dd.ClockMaxLatencyNS, dd.ClockMaxSkewNS))
		dt.AddRowf("100-path avg skew", fmt.Sprintf("%+.4f ns", dd.AvgSkew100NS))
		dt.AddRowf("Critical path", fmt.Sprintf("%d cells (%d top / %d bottom), %d MIVs",
			dd.PathCells, dd.TopCells, dd.BottomCells, dd.PathMIVs))
		dt.AddRowf("Path delay", fmt.Sprintf("%.3f ns (cell %.3f, wire %.3f)", dd.PathDelayNS, dd.CellDelayNS, dd.WireDelayNS))
		dt.AddRowf("Avg stage delay top/bottom", fmt.Sprintf("%.1f / %.1f ps", dd.AvgTopDelayNS*1000, dd.AvgBotDelayNS*1000))
		if dd.HasMacros {
			dt.AddRowf("Memory net latency in/out", fmt.Sprintf("%.2f / %.2f ps", dd.MemInLatencyPS, dd.MemOutLatencyPS))
			dt.AddRowf("Memory net switching", fmt.Sprintf("%.2f µW", dd.MemNetSwitchUW))
		}
		if err := dt.Render(os.Stdout); err != nil {
			return err
		}
	}

	if vlog != "" {
		f, err := os.Create(vlog)
		if err != nil {
			return err
		}
		if err := netlist.WriteVerilog(f, r.Design); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", vlog)
	}

	if svgDir != "" {
		tiers := core.ConfigName(config).Tiers()
		for ti := 0; ti < tiers; ti++ {
			svg := &report.LayoutSVG{Design: r.Design, Outline: r.Outline, Tier: tech.Tier(ti), Tiers: tiers}
			name := filepath.Join(svgDir, fmt.Sprintf("%s_%s_tier%d.svg", design, config, ti))
			if err := os.MkdirAll(svgDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := svg.Write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", name)

			hist, err := place.DensityMap(r.Design, r.Outline, tech.Tier(ti), tiers, 48, 24)
			if err != nil {
				return err
			}
			fmt.Printf("tier %d density map:\n%s", ti, report.AsciiDensity(hist))
		}
	}
	return nil
}
