package main

import (
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestSigtermDrains: the daemon exits 0 on SIGTERM after serving real
// traffic — the signal path runs the same orderly Shutdown the serve
// tests verify leak-free.
func TestSigtermDrains(t *testing.T) {
	const addr = "127.0.0.1:19173"
	code := make(chan int, 1)
	go func() { code <- run([]string{"-addr", addr, "-cache", t.TempDir()}) }()

	// Wait for the listener, then run one session through it.
	var cl *serve.Client
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		if cl, err = serve.Dial(addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	req := &serve.OpenRequest{Design: "ldpc", Config: "2D-12T",
		Scale: 0.05, Seed: 1, ClockGHz: 1.0, Boundary: "place"}
	if _, err := cl.Open(req, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Timing(); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("flowd exited %d after SIGTERM, want 0", c)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("flowd did not drain within 30s of SIGTERM")
	}
}
