// Command flowd is the flow-as-a-service daemon: it listens on a TCP
// address and serves concurrent flow/STA/PPAC requests over the wire
// protocol in internal/serve. Clients (cmd/flowc, the load harness)
// open sessions that hold a journaled netlist with a persistent
// incremental timer, apply placement mutations, and read back timing —
// every response byte-identical to the equivalent offline run.
//
// Usage:
//
//	flowd [-addr :9173] [-max-sessions 64] [-workers 0]
//	      [-max-frame bytes] [-cache dir] [-v]
//
// SIGINT/SIGTERM drain the daemon: accepting stops, in-flight work is
// cancelled at the next stage boundary, every live connection receives
// the protocol-level shutdown record, and the process exits once all
// connections unwind (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("flowd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:9173", "listen address")
		maxSess    = fs.Int("max-sessions", 64, "admitted sessions + PPAC evaluations before CodeBusy refusal")
		workers    = fs.Int("workers", 0, "total intra-flow worker budget across sessions (0 = GOMAXPROCS)")
		maxFrame   = fs.Int("max-frame", serve.DefaultMaxFrame, "received frame payload cap in bytes")
		cacheDir   = fs.String("cache", "", "design-snapshot cache directory (default: private temp dir)")
		drainGrace = fs.Duration("drain-timeout", 30*time.Second, "max wait for connections to unwind on shutdown")
		verbose    = fs.Bool("v", false, "log connection-level events")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logger := log.New(os.Stderr, "flowd: ", log.LstdFlags)
	opt := serve.Options{
		MaxSessions: *maxSess,
		Workers:     *workers,
		MaxFrame:    *maxFrame,
		CacheDir:    *cacheDir,
	}
	if *verbose {
		opt.Logf = logger.Printf
	}
	srv := serve.New(opt)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowd:", err)
		return 1
	}
	logger.Printf("listening on %s (max-sessions %d)", lis.Addr(), *maxSess)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	select {
	case s := <-sig:
		logger.Printf("%v: draining (%d active sessions)", s, srv.ActiveSessions())
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
			return 1
		}
		if err := <-done; err != nil {
			logger.Printf("serve: %v", err)
			return 1
		}
		logger.Printf("drained cleanly")
		return 0
	case err := <-done:
		if err != nil {
			logger.Printf("serve: %v", err)
			return 1
		}
		return 0
	}
}
