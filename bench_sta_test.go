// Timing-engine benchmarks: the incremental sta.Timer against the
// one-shot analysis it replaces, on the repair-loop workload the flow
// engine actually runs. Both benchmarks pair a "full" sub-benchmark
// (fresh analysis per round, raw extraction — the pre-Timer behaviour)
// with an "incremental" one (persistent Timer over a revision-keyed
// extraction cache); the wall-clock ratio is the engine's payoff.
// BENCH_sta.json records a reference run.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/designs"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/tech"
)

// benchPeriod is a deliberately tight clock so the repair workload finds
// failing cells to act on.
const benchPeriod = 0.45

// benchDesign generates netcard — the suite's largest netlist — at the
// benchmark scale with a deterministic placement scatter, so extraction
// sees real wire RC.
func benchDesign(b *testing.B, scale float64) (*netlist.Design, *cell.Library) {
	b.Helper()
	lib := cell.NewLibrary(tech.Variant12T())
	d, err := designs.Generate(designs.Netcard, lib, designs.Params{Scale: scale, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, inst := range d.Instances {
		inst.SetLoc(geom.Pt(rng.Float64()*400, rng.Float64()*400))
	}
	return d, lib
}

// benchMoveTargets picks a deterministic spread of combinational cells
// to perturb, one per round.
func benchMoveTargets(d *netlist.Design) []*netlist.Instance {
	var out []*netlist.Instance
	for i, inst := range d.Instances {
		if i%97 != 0 || inst.Master.Function.IsSequential() || inst.Master.Function.IsMacro() {
			continue
		}
		out = append(out, inst)
	}
	return out
}

// benchResizeTargets picks cells that can step one drive up, paired with
// their up-masters, so rounds can toggle sizes forever without drifting.
func benchResizeTargets(d *netlist.Design, lib *cell.Library, max int) (insts []*netlist.Instance, up []*cell.Master) {
	for i, inst := range d.Instances {
		if i%53 != 0 || inst.Master.Function.IsSequential() || inst.Master.Function.IsMacro() {
			continue
		}
		m := lib.NextDriveUp(inst.Master)
		if m == nil {
			continue
		}
		insts = append(insts, inst)
		up = append(up, m)
		if len(insts) == max {
			break
		}
	}
	return insts, up
}

// BenchmarkStaIncremental times one placement nudge plus re-analysis:
// the full path re-times the whole design from scratch each round; the
// incremental path re-propagates from the moved cell's frontier.
func BenchmarkStaIncremental(b *testing.B) {
	scale := *benchScale
	b.Run("full", func(b *testing.B) {
		d, _ := benchDesign(b, scale)
		moves := benchMoveTargets(d)
		if len(moves) == 0 {
			b.Fatal("no movable cells")
		}
		cfg := sta.DefaultConfig(benchPeriod)
		cfg.Router = route.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := moves[i%len(moves)]
			m.SetLoc(geom.Pt(m.Loc.X+1, m.Loc.Y))
			if _, err := sta.Analyze(d, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		d, _ := benchDesign(b, scale)
		moves := benchMoveTargets(d)
		if len(moves) == 0 {
			b.Fatal("no movable cells")
		}
		cfg := sta.DefaultConfig(benchPeriod)
		cfg.Router = route.NewCache(route.New(), d)
		tm, err := sta.NewTimer(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer tm.Close()
		if _, err := tm.Update(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := moves[i%len(moves)]
			m.SetLoc(geom.Pt(m.Loc.X+1, m.Loc.Y))
			if _, err := tm.Update(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRepairTiming times one sizing round of the repair loop: flip
// a bounded set of cells one drive step (up on even rounds, back down on
// odd, so the netlist never drifts), then re-analyze and read the slack
// map — exactly the per-round timing work of core's repairTiming.
func BenchmarkRepairTiming(b *testing.B) {
	scale := *benchScale
	const nResize = 24
	b.Run("full", func(b *testing.B) {
		d, lib := benchDesign(b, scale)
		insts, up := benchResizeTargets(d, lib, nResize)
		if len(insts) == 0 {
			b.Fatal("no resizable cells")
		}
		down := make([]*cell.Master, len(insts))
		for j, inst := range insts {
			down[j] = inst.Master
		}
		cfg := sta.DefaultConfig(benchPeriod)
		cfg.Router = route.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			masters := up
			if i%2 == 1 {
				masters = down
			}
			for j, inst := range insts {
				if err := d.ReplaceMaster(inst, masters[j]); err != nil {
					b.Fatal(err)
				}
			}
			res, err := sta.Analyze(d, cfg)
			if err != nil {
				b.Fatal(err)
			}
			_ = res.SlackMap()
		}
	})
	b.Run("incremental", func(b *testing.B) {
		d, lib := benchDesign(b, scale)
		insts, up := benchResizeTargets(d, lib, nResize)
		if len(insts) == 0 {
			b.Fatal("no resizable cells")
		}
		down := make([]*cell.Master, len(insts))
		for j, inst := range insts {
			down[j] = inst.Master
		}
		cfg := sta.DefaultConfig(benchPeriod)
		cfg.Router = route.NewCache(route.New(), d)
		tm, err := sta.NewTimer(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer tm.Close()
		if _, err := tm.Update(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			masters := up
			if i%2 == 1 {
				masters = down
			}
			for j, inst := range insts {
				if err := d.ReplaceMaster(inst, masters[j]); err != nil {
					b.Fatal(err)
				}
			}
			res, err := tm.Update()
			if err != nil {
				b.Fatal(err)
			}
			_ = res.SlackMap()
		}
	})
}
