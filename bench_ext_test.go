// Extension benchmarks: experiments the paper motivates but does not
// tabulate — the rejected level-shifter design style (Sec. III-B), the
// track-mix exploration its conclusion calls for, and the power-delivery
// study it defers to future work.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/pdn"
	"repro/internal/report"
	"repro/internal/tech"
)

// BenchmarkLevelShifterAblation quantifies Sec. III-B: heterogeneous 3-D
// with a level shifter on every tier-crossing net versus the paper's
// level-shifter-free style.
func BenchmarkLevelShifterAblation(b *testing.B) {
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.CPU, lib12, designs.Params{Scale: 0.1, Seed: *benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	fopt := core.DefaultFmaxOptions()
	fopt.Iterations = 4
	fmax, err := core.FindFmax(context.Background(), src, core.Config2D12T, fopt)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		plain, err := core.Run(context.Background(), src, core.ConfigHetero, core.DefaultOptions(fmax))
		if err != nil {
			b.Fatal(err)
		}
		opt := core.DefaultOptions(fmax)
		opt.ForceLevelShifters = true
		shifted, err := core.Run(context.Background(), src, core.ConfigHetero, opt)
		if err != nil {
			b.Fatal(err)
		}
		t := report.NewTable(fmt.Sprintf("Level-shifter ablation — CPU hetero @ %.3f GHz", fmax),
			"Metric", "no shifters (paper)", "shifters everywhere")
		p, s := plain.PPAC, shifted.PPAC
		t.AddRowf("Cells", fmt.Sprint(p.Cells), fmt.Sprint(s.Cells))
		t.AddRowf("WNS (ns)", fmt.Sprintf("%+.3f", p.WNS), fmt.Sprintf("%+.3f", s.WNS))
		t.AddRowf("Total power (mW)", fmt.Sprintf("%.2f", p.PowerMW), fmt.Sprintf("%.2f", s.PowerMW))
		t.AddRowf("WL (m)", fmt.Sprintf("%.3f", p.WLm), fmt.Sprintf("%.3f", s.WLm))
		t.AddRowf("PDP (pJ)", fmt.Sprintf("%.2f", p.PDPpJ), fmt.Sprintf("%.2f", s.PDPpJ))
		t.AddRowf("Flow", p.Refinement, s.Refinement)
		out = t.String()
	}
	printOnce(b, out)
}

// BenchmarkTrackMix sweeps the heterogeneous top-die library across
// synthetic 9/10/11-track variants — the exploration the paper's
// conclusion requests.
func BenchmarkTrackMix(b *testing.B) {
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.CPU, lib12, designs.Params{Scale: 0.1, Seed: *benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	fopt := core.DefaultFmaxOptions()
	fopt.Iterations = 4
	fmax, err := core.FindFmax(context.Background(), src, core.Config2D12T, fopt)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		t := report.NewTable(fmt.Sprintf("Track-mix exploration — CPU hetero @ %.3f GHz, bottom die fixed at 12-track", fmax),
			"Top die", "VDD", "Si mm²", "P mW", "WNS ns", "met", "PDP pJ", "PPC")
		for _, tr := range []int{9, 10, 11} {
			v, err := tech.MakeVariant(tr)
			if err != nil {
				b.Fatal(err)
			}
			opt := core.DefaultOptions(fmax)
			opt.TopVariant = &v
			r, err := core.Run(context.Background(), src, core.ConfigHetero, opt)
			if err != nil {
				b.Fatal(err)
			}
			p := r.PPAC
			t.AddRowf(fmt.Sprintf("%d-track", tr), fmt.Sprintf("%.2f V", v.VDD),
				fmt.Sprintf("%.4f", p.SiAreaMM2), fmt.Sprintf("%.2f", p.PowerMW),
				fmt.Sprintf("%+.3f", p.WNS), fmt.Sprint(p.TimingMet()),
				fmt.Sprintf("%.2f", p.PDPpJ), fmt.Sprintf("%.2f", p.PPC))
		}
		out = t.String()
	}
	printOnce(b, out)
}

// BenchmarkPDN solves the IR-drop of the heterogeneous CPU — the
// power-delivery study the paper leaves as future work.
func BenchmarkPDN(b *testing.B) {
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.CPU, lib12, designs.Params{Scale: 0.1, Seed: *benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	r, err := core.Run(context.Background(), src, core.ConfigHetero, core.DefaultOptions(0.5))
	if err != nil {
		b.Fatal(err)
	}
	r2d, err := core.Run(context.Background(), src, core.Config2D12T, core.DefaultOptions(0.5))
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		t := report.NewTable("PDN IR-drop (paper future work): hetero 3-D vs 2-D, 5-pad mesh",
			"Die", "VDD", "Current A", "Worst droop mV", "Droop %", "Worst @")
		add := func(label string, reps []pdn.TierReport) {
			for _, rep := range reps {
				t.AddRowf(fmt.Sprintf("%s %s", label, rep.Tier),
					fmt.Sprintf("%.2f", rep.VDD),
					fmt.Sprintf("%.4f", rep.CurrentA),
					fmt.Sprintf("%.2f", rep.WorstDroopV*1000),
					fmt.Sprintf("%.2f", rep.DroopFrac()*100),
					rep.WorstLoc.String())
			}
		}
		reps, err := pdn.Analyze(r.Design, r.Outline, 2, r.Power, pdn.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		add("hetero", reps)
		reps2, err := pdn.Analyze(r2d.Design, r2d.Outline, 1, r2d.Power, pdn.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		add("2D-12T", reps2)
		out = t.String()
	}
	printOnce(b, out)
}
