// Costsweep explores the paper's die-cost model (Table IV): yield-limited
// die cost versus area for 2-D and folded 3-D integration, the effect of
// defect density, and the break-even point where monolithic 3-D becomes
// cheaper despite its wafer-cost premium — the economics behind the
// paper's "low-cost heterogeneous 3-D" argument.
//
//	go run ./examples/costsweep
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cost"
	"repro/internal/report"
)

func main() {
	m := cost.Default()

	fmt.Printf("wafer: %.0f mm, D_w=%.1f/mm², κ=%.2f, β=%.2f\n",
		m.WaferDiameterMM, m.DefectDensity, m.WaferYield, m.YieldDegradation3D)
	fmt.Printf("wafer cost: 2-D %.2f C', 3-D %.2f C' (two FEOL + two BEOL stacks + α)\n\n",
		m.WaferCost2D(), m.WaferCost3D())

	// --- Sweep area: where does folding win?
	t := report.NewTable("Die cost vs area (×10⁻⁶ C'); 3-D folds the same silicon into two tiers",
		"2D area mm²", "2D", "3D", "3D hetero (−12.5%)", "hetero/2D")
	breakEven := -1.0
	for _, a := range []float64{0.05, 0.1, 0.2, 0.39, 0.8, 1.5, 3.0, 6.0} {
		c2, err := m.DieCost2D(a)
		if err != nil {
			log.Fatal(err)
		}
		c3, err := m.DieCost3D(a / 2)
		if err != nil {
			log.Fatal(err)
		}
		// The heterogeneous flow shrinks the folded footprint by 12.5 %.
		ch, err := m.DieCost3D(a / 2 * 0.875)
		if err != nil {
			log.Fatal(err)
		}
		if breakEven < 0 && ch < c2 {
			breakEven = a
		}
		t.AddRowf(fmt.Sprintf("%.2f", a),
			fmt.Sprintf("%.3f", c2*1e6), fmt.Sprintf("%.3f", c3*1e6),
			fmt.Sprintf("%.3f", ch*1e6), fmt.Sprintf("%.3f", ch/c2))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if breakEven > 0 {
		fmt.Printf("\nheterogeneous 3-D becomes cheaper than 2-D from ≈%.2f mm² dies upward\n", breakEven)
	}

	// --- Defect-density sensitivity at the paper's CPU footprint.
	t2 := report.NewTable("\nDefect-density sensitivity at a 0.39 mm² CPU-class die (×10⁻⁶ C')",
		"D_w /mm²", "2D", "3D hetero", "ratio")
	for _, dw := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		mm := m
		mm.DefectDensity = dw
		c2, err := mm.DieCost2D(0.39)
		if err != nil {
			log.Fatal(err)
		}
		ch, err := mm.DieCost3D(0.39 / 2 * 0.875)
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRowf(fmt.Sprintf("%.2f", dw),
			fmt.Sprintf("%.3f", c2*1e6), fmt.Sprintf("%.3f", ch*1e6),
			fmt.Sprintf("%.3f", ch/c2))
	}
	if err := t2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhigher defect density punishes the big 2-D die quadratically while the")
	fmt.Println("two half-size 3-D tiers keep yielding — the classic 3-D cost argument,")
	fmt.Println("partially offset by the β yield-degradation and α integration premiums.")
}
