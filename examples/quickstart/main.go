// Quickstart: generate a benchmark netlist, implement it as a
// heterogeneous monolithic 3-D IC with the Hetero-Pin-3D flow, and print
// its PPAC record.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/tech"
)

func main() {
	// 1. Build the 12-track library (the pseudo-3-D stage's technology)
	//    and generate a small CPU-like netlist.
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.CPU, lib12, designs.Params{Scale: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	stats := src.ComputeStats()
	fmt.Printf("generated %s: %d cells, %d macros, %d registers\n",
		src.Name, stats.Cells, stats.Macros, stats.Sequential)

	// 2. Find the design's 2D-12T maximum frequency — the paper's
	//    iso-performance target for every implementation.
	fmax, err := core.FindFmax(context.Background(), src, core.Config2D12T, core.DefaultFmaxOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2D-12T f_max = %.3f GHz\n", fmax)

	// 3. Run the heterogeneous flow: timing-based partitioning, 9-track
	//    retargeting of the top die, 3-D clock tree, repartitioning ECO.
	r, err := core.Run(context.Background(), src, core.ConfigHetero, core.DefaultOptions(fmax))
	if err != nil {
		log.Fatal(err)
	}
	p := r.PPAC
	fmt.Printf("\nHetero-M3D @ %.3f GHz:\n", p.FreqGHz)
	fmt.Printf("  silicon area   %.4f mm² (footprint %.4f mm², width %.0f µm)\n",
		p.SiAreaMM2, p.FootprintMM2, p.ChipWidthUM)
	fmt.Printf("  wirelength     %.3f m across %d MIVs\n", p.WLm, p.MIVs)
	fmt.Printf("  power          %.2f mW (clock %.2f mW, leakage %.2f mW)\n",
		p.PowerMW, p.ClockPowerMW, p.LeakageMW)
	fmt.Printf("  timing         WNS %+0.3f ns, met=%v, effective delay %.3f ns\n",
		p.WNS, p.TimingMet(), p.EffDelayNS)
	fmt.Printf("  PDP            %.2f pJ\n", p.PDPpJ)
	fmt.Printf("  die cost       %.3f ×10⁻⁶C' (%.1f ×10⁻⁶C'/cm²)\n", p.DieCostMicroC, p.CostPerCm2)
	fmt.Printf("  PPC            %.3f GHz/(W·10⁻⁶C')\n", p.PPC)
	fmt.Printf("  flow           %s\n", p.Refinement)

	// 4. Inspect the tier split the partitioner produced.
	ds := r.Design.ComputeStats()
	fmt.Printf("\ntier split: %d cells on the fast 12-track bottom die, %d on the 9-track top die\n",
		ds.CellsByTier[tech.TierBottom], ds.CellsByTier[tech.TierTop])
	fmt.Printf("cross-tier nets: %d of %d\n", ds.CrossTierNets, ds.Nets)
}
