// Fo4boundary walks through the paper's Sec. II-B boundary-cell study on
// the switch-level simulator: what happens to an FO-4 stage when its
// loads sit on the other die (Fig. 2a) or its input arrives at the other
// die's voltage (Fig. 2b), and why the 9T/12T pair needs no level
// shifters.
//
//	go run ./examples/fo4boundary
package main

import (
	"fmt"
	"log"

	"repro/internal/spice"
	"repro/internal/tech"
)

func main() {
	fast, slow := tech.Variant12T(), tech.Variant9T()
	pf, ps := spice.ParamsFor(fast), spice.ParamsFor(slow)
	opt := spice.DefaultSimOptions()

	// --- The voltage rule (Sec. II-B).
	fmt.Printf("V_DDH=%.2f V (12T), V_DDL=%.2f V (9T): ΔV=%.2f V vs limit %.2f V → level-shifter-free: %v\n\n",
		fast.VDD, slow.VDD, fast.VDD-slow.VDD, tech.MaxHeteroVoltageRatio*fast.VDD,
		spice.VoltageCompatible(fast, slow))

	// --- Homogeneous baselines.
	mf, err := spice.SimulateFO4(pf, 4*pf.CGate, pf.VDD, opt)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := spice.SimulateFO4(ps, 4*ps.CGate, ps.VDD, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FO-4 baselines: fast %.1f ps / %.2f µW, slow %.1f ps / %.2f µW (ratio %.2f×)\n\n",
		mf.FallDelay*1000, mf.TotalPow, ms.FallDelay*1000, ms.TotalPow, ms.FallDelay/mf.FallDelay)

	// --- Boundary at the driver output (Fig. 2a): loads from the other
	// tier change the capacitance the driver sees.
	m12, err := spice.SimulateFO4(pf, 4*ps.CGate, pf.VDD, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast driver, slow loads:  fall delay %.1f → %.1f ps (%+.1f%%) — lighter 9T gates speed it up\n",
		mf.FallDelay*1000, m12.FallDelay*1000, pct(m12.FallDelay, mf.FallDelay))
	m21, err := spice.SimulateFO4(ps, 4*pf.CGate, ps.VDD, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slow driver, fast loads:  fall delay %.1f → %.1f ps (%+.1f%%) — heavier 12T gates slow it down\n\n",
		ms.FallDelay*1000, m21.FallDelay*1000, pct(m21.FallDelay, ms.FallDelay))

	// --- Boundary at the driver input (Fig. 2b): the gate swings to the
	// other tier's VDD.
	mUnder, err := spice.SimulateFO4(pf, 4*pf.CGate, slow.VDD, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast cell driven at 0.81 V: delay %+.1f%%, leakage %+.0f%% — the PMOS never quite turns off\n",
		pct(mUnder.FallDelay, mf.FallDelay), pct(mUnder.Leakage, mf.Leakage))
	mOver, err := spice.SimulateFO4(ps, 4*ps.CGate, fast.VDD, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slow cell driven at 0.90 V: delay %+.1f%%, leakage %+.0f%% — overdrive helps on both counts\n\n",
		pct(mOver.FallDelay, ms.FallDelay), pct(mOver.Leakage, ms.Leakage))

	fmt.Println("takeaway: the timing shifts stay within the library characterization range")
	fmt.Println("and cancel along multi-stage paths, so the flow models them as boundary-cell")
	fmt.Println("derates (tech.DefaultDerates) instead of inserting costly level shifters.")

	// --- What a too-low input would do: below V_th the signal stops
	// registering — the case the paper's voltage rule forbids.
	if _, err := spice.SimulateFO4(pf, 4*pf.CGate, 0.25, opt); err != nil {
		fmt.Printf("\nand with a 0.25 V input the simulator refuses, as the silicon would: %v\n", err)
	}
}

func pct(a, b float64) float64 { return (a - b) / b * 100 }
