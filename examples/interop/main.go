// Interop demonstrates the interchange path a downstream user would run:
// implement a design with the heterogeneous flow, export the cell
// libraries as Liberty and the implemented netlist as structural Verilog
// (with tier/placement attributes), read both back, and prove the
// re-imported design times identically.
//
//	go run ./examples/interop
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/tech"
)

func main() {
	dir, err := os.MkdirTemp("", "hetero3d-interop")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Implement a small LDPC in the heterogeneous flow.
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.LDPC, lib12, designs.Params{Scale: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	r, err := core.Run(context.Background(), src, core.ConfigHetero, core.DefaultOptions(1.0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("implemented %s: %d cells, WNS %+0.3f ns\n",
		src.Name, r.PPAC.Cells, r.PPAC.WNS)

	// 2. Export the two tier libraries as Liberty.
	libPaths := map[tech.Track]string{}
	for _, lib := range []*cell.Library{r.Libs[0], r.Libs[1]} {
		p := filepath.Join(dir, fmt.Sprintf("%dt.lib", int(lib.Variant.Track)))
		f, err := os.Create(p)
		if err != nil {
			log.Fatal(err)
		}
		if err := cell.WriteLiberty(f, lib); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		libPaths[lib.Variant.Track] = p
		fmt.Printf("exported %s (%d masters)\n", p, len(lib.Masters()))
	}

	// 3. Export the implemented netlist as Verilog with attributes.
	vPath := filepath.Join(dir, "ldpc_hetero.v")
	vf, err := os.Create(vPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := netlist.WriteVerilog(vf, r.Design); err != nil {
		log.Fatal(err)
	}
	if err := vf.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(vPath)
	fmt.Printf("exported %s (%d bytes)\n", vPath, info.Size())

	// 4. Read everything back from disk.
	reload := func(track tech.Track) *cell.Library {
		f, err := os.Open(libPaths[track])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		lib, err := cell.ReadLiberty(f)
		if err != nil {
			log.Fatal(err)
		}
		return lib
	}
	rl12, rl9 := reload(tech.Track12), reload(tech.Track9)

	vsrc, err := os.ReadFile(vPath)
	if err != nil {
		log.Fatal(err)
	}
	back, err := netlist.ReadVerilog(strings.NewReader(string(vsrc)), func(name string) (*cell.Master, error) {
		if strings.HasSuffix(name, "_9T") {
			return rl9.Master(name)
		}
		return rl12.Master(name)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-imported %s: %d cells\n", back.Name, back.ComputeStats().Cells)

	// 5. Re-time the imported design against the imported libraries; the
	// ideal-clock timing must agree with the original to print precision.
	cfg := sta.DefaultConfig(1.0)
	resOrig, err := sta.Analyze(r.Design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	resBack, err := sta.Analyze(back, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nideal-clock WNS: original %+0.6f ns, re-imported %+0.6f ns\n", resOrig.WNS, resBack.WNS)
	if diff := resOrig.WNS - resBack.WNS; diff < 1e-4 && diff > -1e-4 {
		fmt.Println("round trip preserved timing ✓")
	} else {
		fmt.Println("WARNING: timing drifted across the round trip")
		os.Exit(1)
	}
}
