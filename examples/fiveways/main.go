// Fiveways implements the AES benchmark in all five of the paper's
// configurations (Fig. 1) at the same iso-performance target and prints a
// side-by-side PPAC comparison — the per-design view behind Table VII.
// AES is the paper's stress case for heterogeneous 3-D: its 128 symmetric
// bit-slices give the timing-based partitioner the least criticality
// separation to work with.
//
//	go run ./examples/fiveways
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/report"
	"repro/internal/tech"
)

func main() {
	lib12 := cell.NewLibrary(tech.Variant12T())
	src, err := designs.Generate(designs.AES, lib12, designs.Params{Scale: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aes: %d cells\n", src.ComputeStats().Cells)

	fmax, err := core.FindFmax(context.Background(), src, core.Config2D12T, core.DefaultFmaxOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iso-performance target: %.3f GHz (2D-12T f_max)\n\n", fmax)

	t := report.NewTable("AES across the five configurations",
		"Config", "Si mm²", "WL m", "MIVs", "P mW", "WNS ns", "met", "PDP pJ", "Cost µC'", "PPC")
	var het, best2d *core.PPAC
	for _, cfg := range core.AllConfigs {
		r, err := core.Run(context.Background(), src, cfg, core.DefaultOptions(fmax))
		if err != nil {
			log.Fatal(err)
		}
		p := r.PPAC
		t.AddRowf(string(cfg),
			fmt.Sprintf("%.4f", p.SiAreaMM2),
			fmt.Sprintf("%.3f", p.WLm),
			fmt.Sprint(p.MIVs),
			fmt.Sprintf("%.2f", p.PowerMW),
			fmt.Sprintf("%+.3f", p.WNS),
			fmt.Sprint(p.TimingMet()),
			fmt.Sprintf("%.2f", p.PDPpJ),
			fmt.Sprintf("%.3f", p.DieCostMicroC),
			fmt.Sprintf("%.1f", p.PPC))
		if cfg == core.ConfigHetero {
			het = p
		}
		if cfg == core.Config2D12T {
			best2d = p
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nhetero vs best 2-D: Si %+.1f%%, WL %+.1f%%, power %+.1f%%, PPC %+.1f%%\n",
		pct(het.SiAreaMM2, best2d.SiAreaMM2), pct(het.WLm, best2d.WLm),
		pct(het.PowerMW, best2d.PowerMW), pct(het.PPC, best2d.PPC))
	fmt.Println("(the paper finds AES the least hetero-friendly design — expect the")
	fmt.Println(" smallest wins here, and try -design cpu in cmd/hetero3d for the best case)")
}

func pct(a, b float64) float64 { return (a - b) / b * 100 }
