// Package statkeys flags flow.Context.AddStat calls whose key is not a
// constant declared in internal/flow's stat-key registry
// (internal/flow/statkeys.go). Ad-hoc string keys fragment the metric
// namespace: the aggregation tables (-timer-stats, -check) join stage
// metrics across flows by key, so a typo silently drops a counter from
// every report instead of failing anywhere.
package statkeys

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

const flowPath = "repro/internal/flow"

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "statkeys",
	Doc: "flag AddStat keys not declared in internal/flow's stat-key registry\n\n" +
		"flow.Context.AddStat keys must be flow package constants (Stat*);\n" +
		"string literals and foreign constants fragment the metric namespace.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			obj := analysis.FuncObject(pass.TypesInfo, call)
			if obj == nil || obj.Name() != "AddStat" || obj.Pkg() == nil || obj.Pkg().Path() != flowPath {
				return true
			}
			if pass.InTestFile(call.Pos()) || registryConst(pass.TypesInfo, call.Args[0]) {
				return true
			}
			pass.Reportf("statkeys001", call.Args[0].Pos(),
				"AddStat key must be a flow.Stat* constant from internal/flow/statkeys.go, not an ad-hoc string")
			return true
		})
	}
	return nil
}

// registryConst reports whether the expression is (a reference to) a
// constant declared in the flow package.
func registryConst(info *types.Info, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Path() == flowPath
}
