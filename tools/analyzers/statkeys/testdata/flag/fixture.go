// Fixture for the statkeys pass.
package fixture

import "repro/internal/flow"

const localKey = "local_key"

func bad(c *flow.Context) {
	c.AddStat("raw_key", 1) // want "AddStat key must be a flow.Stat"
	c.AddStat(localKey, 2)  // want "AddStat key must be a flow.Stat"
	key := "dynamic"
	c.AddStat(key, 3) // want "AddStat key must be a flow.Stat"
}

func good(c *flow.Context) {
	c.AddStat(flow.StatSTAFull, 1)
	c.AddStat((flow.StatRCHits), 2)
}

// addStat shadows the method name on an unrelated type: must not flag.
type fake struct{}

func (fake) AddStat(key string, v int64) {}

func unrelated(f fake) {
	f.AddStat("whatever", 1)
}
