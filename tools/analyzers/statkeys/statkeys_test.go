package statkeys_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/statkeys"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "fixture", statkeys.Analyzer)
}

// TestCoreClean runs the pass over internal/core, whose AddStat calls all
// use registry constants.
func TestCoreClean(t *testing.T) {
	analyzertest.Run(t, "../../../internal/core", "repro/internal/core", statkeys.Analyzer)
}
