// Fixture for the journalmutate pass: every `want` line must be flagged,
// everything else must not.
package fixture

import (
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// hasLoc shadows the field names on an unrelated type: must not flag.
type hasLoc struct {
	Loc  geom.Point
	Tier tech.Tier
}

func bad(inst *netlist.Instance, insts []*netlist.Instance) {
	inst.Loc = geom.Pt(1, 2)     // want "direct write to netlist.Instance.Loc"
	inst.Tier = tech.TierTop     // want "direct write to netlist.Instance.Tier"
	inst.Loc.X = 3.5             // want "direct write to netlist.Instance.Loc"
	insts[0].Loc = geom.Pt(0, 0) // want "direct write to netlist.Instance.Loc"
	(*inst).Tier = 0             // want "direct write to netlist.Instance.Tier"
}

func good(d *netlist.Design, inst *netlist.Instance, h *hasLoc) {
	inst.SetLoc(geom.Pt(1, 2))
	inst.SetTier(tech.TierTop)
	inst.InitLoc(geom.Pt(3, 4))
	inst.InitTier(tech.TierBottom)
	h.Loc = geom.Pt(5, 6) // not an Instance
	h.Tier = tech.TierTop // not an Instance
	inst.Fixed = true     // not a journaled field
	x := inst.Loc.X       // reads are fine
	_ = x
	for _, p := range d.Ports {
		p.Loc = geom.Pt(0, 0) // Port.Loc is not journaled
	}
}
