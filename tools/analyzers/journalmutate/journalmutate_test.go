package journalmutate_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/journalmutate"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "fixture", journalmutate.Analyzer)
}

// TestNetlistExempt runs the pass over the real journal package, which is
// full of direct Loc/Tier writes that must all be exempt.
func TestNetlistExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/netlist", "repro/internal/netlist", journalmutate.Analyzer)
}
