// Package journalmutate flags direct assignments to netlist.Instance.Loc
// and .Tier outside internal/netlist. The change journal (instance/net
// revisions plus observer notification) is what keeps the incremental
// sta.Timer and the RC extraction cache bit-exact; a raw field write
// bypasses it and silently desynchronizes every engine holding the
// design. Mutations must go through SetLoc/SetTier, or InitLoc/InitTier
// on freshly constructed instances before observers attach.
package journalmutate

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

const netlistPath = "repro/internal/netlist"

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "journalmutate",
	Doc: "flag direct Instance.Loc/Tier writes that bypass the change journal\n\n" +
		"Outside internal/netlist (and tests), assigning to netlist.Instance.Loc\n" +
		"or .Tier skips the revision bump and observer notification the\n" +
		"incremental timer depends on; use SetLoc/SetTier or InitLoc/InitTier.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == netlistPath {
		return nil // the journal's own implementation
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					checkTarget(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkTarget(pass, stmt.X)
			}
			return true
		})
	}
	return nil
}

// checkTarget walks the selector spine of an assignment target (e.g.
// insts[i].Loc.X) looking for a Loc/Tier field selected on an Instance.
func checkTarget(pass *analysis.Pass, expr ast.Expr) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if field := e.Sel.Name; field == "Loc" || field == "Tier" {
				if t := pass.TypesInfo.TypeOf(e.X); t != nil &&
					analysis.NamedFrom(t, netlistPath, "Instance") &&
					isFieldSelection(pass.TypesInfo, e) &&
					!pass.InTestFile(e.Pos()) {
					pass.Reportf("journalmutate001", e.Sel.Pos(),
						"direct write to netlist.Instance.%s bypasses the change journal; use Set%s (or Init%s before observers attach)",
						field, field, field)
				}
			}
			expr = e.X
		default:
			return
		}
	}
}

// isFieldSelection distinguishes a struct field access from a method
// value of the same name.
func isFieldSelection(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}
