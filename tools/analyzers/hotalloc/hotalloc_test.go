package hotalloc_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/hotalloc"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "fixture", hotalloc.Analyzer)
}

// The refactored hot layers carry //hotpath:kernel markers on their kernels
// (FM moves, RSMT build, RC extraction, Timer sweeps, bisection); each
// must hold the no-allocation contract the pass enforces.
func TestRouteClean(t *testing.T) {
	analyzertest.Run(t, "../../../internal/route", "repro/internal/route", hotalloc.Analyzer)
}

func TestPartitionClean(t *testing.T) {
	analyzertest.Run(t, "../../../internal/partition", "repro/internal/partition", hotalloc.Analyzer)
}

func TestPlaceClean(t *testing.T) {
	analyzertest.Run(t, "../../../internal/place", "repro/internal/place", hotalloc.Analyzer)
}

func TestStaClean(t *testing.T) {
	analyzertest.Run(t, "../../../internal/sta", "repro/internal/sta", hotalloc.Analyzer)
}

func TestCtsClean(t *testing.T) {
	analyzertest.Run(t, "../../../internal/cts", "repro/internal/cts", hotalloc.Analyzer)
}
