// Package hotalloc flags allocation patterns inside `//hotpath:kernel`-marked
// functions. The dense-index refactor pays for itself only while the
// hot kernels stay off the allocator: the flow calls them once per net,
// per node, or per region, so a single reintroduced map or
// per-iteration slice rebuild multiplies by millions at scale 1.0 —
// and shows up as a diffuse regression long after the offending commit.
//
// A function is hot when its doc comment contains a `//hotpath:kernel`
// directive line. Inside one, the pass flags:
//
//   - map creation anywhere (make(map[...]) or a map literal): maps
//     allocate on creation and rehash on growth; hot kernels use dense
//     index slices or epoch-stamped scratch instead. Clearing a
//     retained map (clear(m)) stays legal.
//   - make of any kind inside a loop: a per-iteration allocation.
//     One-time sizing belongs outside the loop, in reusable scratch
//     (dense.Grow / dense.Zero).
//   - append inside a loop to a slice that is (re)declared empty in
//     that same loop body: the slice regrows from zero every
//     iteration. Appending to scratch declared outside the loop, or to
//     a buffer whose capacity came from a call (h.NetBuf(n),
//     AppendPinLocs(buf[:0])), is the sanctioned reuse pattern and is
//     not flagged.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation patterns in //hotpath:kernel-marked kernels\n\n" +
		"hot kernels run once per net/node/region; maps, in-loop makes,\n" +
		"and per-iteration append growth there multiply by millions at\n" +
		"scale 1.0 and must use the dense scratch idioms instead.",
	Run: run,
}

// directive is the marker family; ScanDirectives reports malformed
// instances (e.g. //hotpath:kernl, which silently un-marks the kernel).
var directive = analysis.DirectiveSpec{
	Name:  "hotpath",
	Verbs: map[string]bool{"kernel": false},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.ScanDirectives(pass, f, directive)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHot(fn) {
				continue
			}
			if pass.InTestFile(fn.Pos()) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// isHot reports whether the function's doc comment carries the
// //hotpath:kernel directive.
func isHot(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == "//hotpath:kernel" {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	declInit := declInits(pass, fn)

	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		loop := innermostLoop(stack)
		switch node := n.(type) {
		case *ast.CompositeLit:
			if _, ok := pass.TypesInfo.Types[node].Type.Underlying().(*types.Map); ok {
				pass.Reportf("hotalloc001", node.Pos(),
					"hot path allocates a map literal; use a dense index slice or epoch-stamped scratch")
			}
		case *ast.CallExpr:
			switch builtinName(pass, node) {
			case "make":
				if _, ok := pass.TypesInfo.Types[node].Type.Underlying().(*types.Map); ok {
					pass.Reportf("hotalloc002", node.Pos(),
						"hot path allocates a map (make); use a dense index slice or epoch-stamped scratch")
				} else if loop != nil {
					pass.Reportf("hotalloc003", node.Pos(),
						"hot path calls make inside a loop (a per-iteration allocation); hoist it into reusable scratch (dense.Grow)")
				}
			case "append":
				if loop == nil || len(node.Args) == 0 {
					break
				}
				dst, ok := ast.Unparen(node.Args[0]).(*ast.Ident)
				if !ok {
					break
				}
				obj := pass.TypesInfo.Uses[dst]
				if obj == nil || obj.Pos() < loop.Pos() || obj.Pos() >= loop.End() {
					break // declared outside the loop: amortized reuse
				}
				if init, known := declInit[obj]; known && growsFromZero(init) {
					pass.Reportf("hotalloc004", node.Pos(),
						"hot path regrows slice %s from zero every iteration; reuse a scratch buffer declared outside the loop", dst.Name)
				}
			}
		}
		return true
	})
}

// declInits maps every := / var-declared object of the function to its
// initializer expression (nil when declared without one).
func declInits(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]ast.Expr {
	out := make(map[types.Object]ast.Expr)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					continue
				}
				if len(d.Rhs) == len(d.Lhs) {
					out[obj] = d.Rhs[i]
				} else if len(d.Rhs) == 1 {
					out[obj] = d.Rhs[0] // multi-value call: not a zero start
				}
			}
		case *ast.ValueSpec:
			for i, id := range d.Names {
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					continue
				}
				if i < len(d.Values) {
					out[obj] = d.Values[i]
				} else {
					out[obj] = nil
				}
			}
		}
		return true
	})
	return out
}

// growsFromZero reports whether the initializer leaves the slice with no
// usable capacity, so per-iteration appends must allocate: no
// initializer (`var x []T`), nil, or an empty literal. Initializers that
// carry capacity from elsewhere — a call (h.NetBuf(n)), a reslice
// (buf[:0]), another variable — are the reuse idiom and pass.
func growsFromZero(init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case nil:
		return true
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	}
	return false
}

// innermostLoop returns the body of the innermost for/range statement on
// the stack whose body encloses the current node, or nil.
func innermostLoop(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			if inBody(s.Body, stack, i) {
				return s.Body
			}
		case *ast.RangeStmt:
			if inBody(s.Body, stack, i) {
				return s.Body
			}
		}
	}
	return nil
}

// inBody reports whether the stack entry directly above the loop at
// index i descends through its body (not its init/cond/post clauses).
func inBody(body *ast.BlockStmt, stack []ast.Node, i int) bool {
	return i+1 < len(stack) && stack[i+1] == body
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}
