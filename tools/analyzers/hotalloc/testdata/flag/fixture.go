// Fixture for the hotalloc pass.
package fixture

// sum is an unmarked function: nothing in it may flag, whatever it
// allocates.
func sum(xs []int) map[int]bool {
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		var out []int
		out = append(out, x)
		seen[len(out)] = true
	}
	return seen
}

// hotMaps creates maps in a marked kernel: both forms flag.
//
//hotpath:kernel
func hotMaps(n int) int {
	m := make(map[int]int, n) // want "hot path allocates a map \(make\)"
	lit := map[string]bool{}  // want "hot path allocates a map literal"
	_ = lit
	return len(m)
}

// hotLoopMake allocates per iteration: flags.
//
//hotpath:kernel
func hotLoopMake(rows [][]int) int {
	total := 0
	for _, r := range rows {
		buf := make([]int, len(r)) // want "make inside a loop"
		copy(buf, r)
		total += len(buf)
	}
	return total
}

// hotLoopGrowth regrows slices born empty inside the loop: all three
// declaration forms flag.
//
//hotpath:kernel
func hotLoopGrowth(rows [][]int) int {
	total := 0
	for _, r := range rows {
		var a []int
		a = append(a, r...) // want "regrows slice a from zero every iteration"
		b := []int{}
		b = append(b, r...) // want "regrows slice b from zero every iteration"
		var c []int = nil
		c = append(c, r...) // want "regrows slice c from zero every iteration"
		total += len(a) + len(b) + len(c)
	}
	return total
}

// hotReuse appends through the sanctioned reuse idioms: scratch
// declared outside the loop, a reslice of it, and a capacity-carrying
// call result. None flag.
//
//hotpath:kernel
func hotReuse(rows [][]int, scratch []int) int {
	total := 0
	var acc []int
	for _, r := range rows {
		acc = append(acc, r...) // outer scratch: amortized, clean
		buf := scratch[:0]
		buf = append(buf, r...) // reslice carries capacity: clean
		got := carve(len(r))
		got = append(got, r...) // call result carries capacity: clean
		total += len(buf) + len(got)
	}
	// Clearing a retained map is legal; only creation flags.
	clear(retained)
	return total + len(acc)
}

var retained = map[int]bool{}

func carve(n int) []int { return make([]int, 0, n) }

// hotShadowedMake calls a local function named make: not the builtin,
// clean.
//
//hotpath:kernel
func hotShadowedMake(rows [][]int) int {
	make := func(n int) []int { return nil }
	total := 0
	for _, r := range rows {
		total += len(make(len(r)))
	}
	return total
}

// Malformed hotpath markers are findings: each fails to mark the
// function, so the allocations below stay (wrongly) unflagged — the
// directive diagnostics are the only thing standing between a typo and
// a silently unchecked kernel.

//hotpath:kernl // want "unknown //hotpath: directive verb"
func typoVerb(n int) map[int]int {
	return make(map[int]int, n) // unmarked: not flagged
}

//hotpth:kernel // want "looks like a misspelled //hotpath:kernel directive"
func typoName(n int) map[int]int {
	return make(map[int]int, n) // unmarked: not flagged
}
