// Fixture for the maporder pass, type-checked under a
// determinism-critical import path so the package gate is open.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside a range over a map"
	}
	return keys
}

func emitWriter(w *strings.Builder, m map[string]float64) {
	for k, v := range m {
		w.WriteString(k) // want "WriteString inside a range over a map"
		_ = v
	}
}

func emitFmt(m map[string]int) error {
	for name, n := range m {
		if n < 0 {
			return fmt.Errorf("bad count for %s", name) // want "fmt.Errorf inside a range over a map"
		}
	}
	return nil
}

// onePerKind: repeated effects of one kind report once per range.
func onePerKind(m map[int]int) ([]int, []int) {
	var a, b []int
	for k, v := range m {
		a = append(a, k) // want "append inside a range over a map"
		b = append(b, v)
	}
	return a, b
}

// sortedAfter is the canonical fix's first half: the collection loop
// still ranges the map, so it carries the audited annotation.
func sortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //maporder:ok collection loop; keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedIteration ranges the sorted key slice — not a map range at all.
func sortedIteration(w *strings.Builder, m map[string]int) {
	for _, k := range sortedAfter(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// orderIndependent folds commutatively; no flagged effect in the body.
func orderIndependent(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// bareDirective: a reason-less //maporder:ok is itself a finding and
// suppresses nothing.
func bareDirective(m map[string]int) []string {
	var keys []string
	for k := range m { //maporder:ok // want "directive needs a reason"
		keys = append(keys, k) // want "append inside a range over a map"
	}
	return keys
}

// misspelled: a typo'd family name is flagged and has no effect.
func misspelled(m map[string]int) []string {
	var keys []string
	for k := range m { //maporde:ok typo'd family name // want "looks like a misspelled //maporder:ok directive"
		keys = append(keys, k) // want "append inside a range over a map"
	}
	return keys
}

// unknownVerb: a verb outside the family is flagged and has no effect.
func unknownVerb(m map[string]int) []string {
	var keys []string
	for k := range m { //maporder:okay audited // want "unknown //maporder: directive verb"
		keys = append(keys, k) // want "append inside a range over a map"
	}
	return keys
}
