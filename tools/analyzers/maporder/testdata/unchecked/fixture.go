// Fixture loaded under a neutral import path: outside the
// determinism-critical set the map-range rules are silent, but the
// directive family is still validated (a malformed annotation here
// would rot unnoticed until the package joined the critical set).
package fixture

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // outside the critical set: not flagged
	}
	return keys
}

func staleAnnotation(m map[string]int) []string {
	var keys []string
	for k := range m { //maporder:ok // want "directive needs a reason"
		keys = append(keys, k)
	}
	return keys
}
