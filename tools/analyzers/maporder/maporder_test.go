package maporder_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/maporder"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "repro/internal/eval", maporder.Analyzer)
}

// Outside the critical package set the map-range rules stay silent;
// only directive validation remains active.
func TestUncheckedPackage(t *testing.T) {
	analyzertest.Run(t, "testdata/unchecked", "fixture", maporder.Analyzer)
}

// The emit paths under goldens must be clean for real: report's tables,
// eval's sinks, core's design serialization, sta's snapshots.
func TestReportExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/report", "repro/internal/report", maporder.Analyzer)
}

func TestEvalExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/eval", "repro/internal/eval", maporder.Analyzer)
}

func TestCoreExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/core", "repro/internal/core", maporder.Analyzer)
}

func TestStaExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/sta", "repro/internal/sta", maporder.Analyzer)
}
