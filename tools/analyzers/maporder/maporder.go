// Package maporder flags order-dependent work inside `range` over a
// map in the determinism-critical packages. Go randomizes map
// iteration order per run, so a map range whose body appends to a
// slice, writes through an io.Writer, or formats output via fmt
// produces run-dependent bytes — the exact failure the golden-table
// harness (FLOW_WORKERS=1 vs 8, byte-identical goldens) exists to
// catch, except it only catches the orderings the test run happened to
// draw. The static check closes that gap.
//
// The pass applies only to the packages whose output is pinned by
// goldens or consumed by them: core, eval, report, sta, route, place,
// cts, and partition. Inside those, a `for k := range m` over a
// map-typed operand is flagged when its body:
//
//   - appends to any slice (the slice's element order now depends on
//     map iteration order),
//   - calls a Write/WriteString/WriteByte/WriteRune method (bytes
//     reach an io.Writer in map order),
//   - calls any function in package fmt (printed or formatted output,
//     including the error chosen by an early-return fmt.Errorf,
//     depends on which key is visited first).
//
// The fix is to iterate sorted keys (collect, sort.Strings/slices.Sort,
// then index the map) — which is no longer a map range and needs no
// annotation. Bodies that are genuinely order-independent despite the
// pattern (e.g. the append is re-sorted immediately after the loop)
// carry `//maporder:ok <reason>` on the range statement's line.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-dependent map ranges in determinism-critical packages\n\n" +
		"a range over a map that appends, writes, or fmt-formats in its\n" +
		"body emits run-dependent bytes; iterate sorted keys instead or\n" +
		"annotate //maporder:ok <reason> after an order-independence audit.",
	Run: run,
}

// critical is the package set whose output the goldens pin.
var critical = map[string]bool{
	"repro/internal/core":      true,
	"repro/internal/eval":      true,
	"repro/internal/report":    true,
	"repro/internal/sta":       true,
	"repro/internal/route":     true,
	"repro/internal/place":     true,
	"repro/internal/cts":       true,
	"repro/internal/partition": true,
}

// directive is the pass's audited-exception marker.
var directive = analysis.DirectiveSpec{
	Name:  "maporder",
	Verbs: map[string]bool{"ok": true},
}

// writerMethods are the io.Writer-family methods whose call inside a map
// range pushes bytes out in iteration order.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func run(pass *analysis.Pass) error {
	if !critical[pass.Pkg.Path()] {
		// Still validate the directive family so a stray //maporder:okk
		// in an unchecked package is caught rather than silently inert.
		for _, f := range pass.Files {
			analysis.ScanDirectives(pass, f, directive)
		}
		return nil
	}
	for _, f := range pass.Files {
		ok := analysis.ScanDirectives(pass, f, directive)["maporder:ok"]
		ast.Inspect(f, func(n ast.Node) bool {
			rng, isRange := n.(*ast.RangeStmt)
			if !isRange {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.InTestFile(rng.Pos()) || ok[pass.Fset.Position(rng.Pos()).Line] {
				return true
			}
			checkBody(pass, rng)
			return true
		})
	}
	return nil
}

// checkBody reports the first order-dependent effect of each kind found
// in the map range's body. Nested map ranges report on their own visit.
func checkBody(pass *analysis.Pass, rng *ast.RangeStmt) {
	var sawAppend, sawWrite, sawFmt bool
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
			if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" && !sawAppend {
				sawAppend = true
				pass.Reportf("maporder001", call.Pos(),
					"append inside a range over a map: element order depends on map iteration order; iterate sorted keys, or annotate //maporder:ok <reason> if re-sorted after")
			}
			return true
		}
		obj := analysis.FuncObject(pass.TypesInfo, call)
		if obj == nil {
			return true
		}
		sig, isSig := obj.Type().(*types.Signature)
		if isSig && sig.Recv() != nil {
			if writerMethods[obj.Name()] && !sawWrite {
				sawWrite = true
				pass.Reportf("maporder002", call.Pos(),
					"%s inside a range over a map writes bytes in map iteration order; iterate sorted keys instead", obj.Name())
			}
			return true
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && !sawFmt {
			sawFmt = true
			pass.Reportf("maporder003", call.Pos(),
				"fmt.%s inside a range over a map: formatted output (or the error chosen first) depends on map iteration order; iterate sorted keys instead", obj.Name())
		}
		return true
	})
}
