// Package pardet statically checks the internal/par determinism
// contract inside the function literals handed to par.ParallelFor and
// par.Do. The contract (par's package doc): work items execute in no
// particular order, so a kernel is deterministic exactly when each item
// writes only its own index-addressed slot and reads only state frozen
// for the duration of the call. The golden tables and the workers
// matrix catch violations dynamically — but only when they happen to
// change output on the tested schedules; this pass refuses the pattern
// itself.
//
// Inside a literal passed to ParallelFor (one int parameter — the work
// item index), the pass flags:
//
//   - writes to captured variables that are not element stores whose
//     index derives from the loop-index parameter (out[i] = v, or
//     n := d.Nets[i]; out[n.ID] = v — derivation is tracked through
//     local data flow);
//   - append to a captured slice and writes into a captured map: both
//     mutate shared structure in schedule order;
//   - any use of a captured *rand.Rand, and any call of the global
//     math/rand functions: a stream consumed in scheduling order
//     differs run to run. Pre-split seeds per item instead (the
//     flow.AttemptSeed pattern).
//
// Inside the zero-parameter literals of one par.Do call, each closure
// owns whatever state it alone writes; the pass flags the same RNG uses
// plus any location written by two or more of the call's closures.
//
// Audited exceptions — e.g. a mutex-guarded par.Stats sink — carry
// `//pardet:ignore <reason>` on the offending line.
package pardet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/tools/analyzers/analysis"
)

const parPath = "repro/internal/par"

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "pardet",
	Doc: "flag schedule-dependent state in par.ParallelFor/par.Do work items\n\n" +
		"each work item must write only its own index-addressed slot and\n" +
		"draw no shared randomness; anything else is deterministic only by\n" +
		"schedule luck. //pardet:ignore <reason> marks audited exceptions.",
	Run: run,
}

// directive is the pass's exception family.
var directive = analysis.DirectiveSpec{
	Name:  "pardet",
	Verbs: map[string]bool{"ignore": true},
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == parPath {
		return nil // the pool's own implementation (worker bookkeeping)
	}
	for _, f := range pass.Files {
		ignored := analysis.ScanDirectives(pass, f, directive)["pardet:ignore"]
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParFanout(pass, call) || pass.InTestFile(call.Pos()) {
				return true
			}
			var doClosures []*ast.FuncLit
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				switch lit.Type.Params.NumFields() {
				case 1:
					checkIndexed(pass, lit, ignored)
				case 0:
					doClosures = append(doClosures, lit)
				}
			}
			checkDo(pass, doClosures, ignored)
			return true
		})
	}
	return nil
}

// isParFanout reports whether the call is par.ParallelFor or par.Do.
func isParFanout(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := analysis.FuncObject(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != parPath {
		return false
	}
	return obj.Name() == "ParallelFor" || obj.Name() == "Do"
}

// checkIndexed enforces the per-item rules on a func(i int) work item.
func checkIndexed(pass *analysis.Pass, lit *ast.FuncLit, ignored map[int]bool) {
	tainted := taintFromIndex(pass, lit)
	report := func(id string, pos token.Pos, format string, args ...interface{}) {
		if !ignored[pass.Fset.Position(pos).Line] {
			pass.Reportf(id, pos, format, args...)
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if node.Tok == token.DEFINE {
				return true // defines new locals; never a captured write
			}
			for i, lhs := range node.Lhs {
				var rhs ast.Expr
				if len(node.Rhs) == len(node.Lhs) {
					rhs = node.Rhs[i]
				}
				checkWrite(pass, lit, lhs, rhs, tainted, report)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, node.X, nil, tainted, report)
		case *ast.CallExpr:
			checkCall(pass, lit, node, report)
		case *ast.Ident:
			checkRandIdent(pass, lit, node, report)
		}
		return true
	})
}

// checkWrite classifies one assignment target inside the work item.
func checkWrite(pass *analysis.Pass, lit *ast.FuncLit, lhs, rhs ast.Expr,
	tainted map[types.Object]bool, report func(string, token.Pos, string, ...interface{})) {
	root, sawIndex, sawTaintedIndex, mapWrite := spine(pass, lhs, tainted)
	if root == nil || !captured(pass, lit, root) {
		return
	}
	switch {
	case mapWrite:
		report("pardet004", lhs.Pos(),
			"work item writes into captured map through %s: map mutation is shared structure in schedule order; use an index-addressed slice slot", root.Name())
	case sawTaintedIndex:
		// The sanctioned shape: an element store addressed by the work
		// item's own index (directly or through local derivation).
	case appendsTo(pass, rhs, root):
		// x = append(x, …): the call-site check reports the append
		// itself; reporting the assignment too would double-flag.
	case sawIndex:
		report("pardet002", lhs.Pos(),
			"work item stores through captured %s at an index that does not derive from the loop-index parameter; items may collide on a slot", root.Name())
	default:
		report("pardet001", lhs.Pos(),
			"work item writes captured variable %s: not an index-addressed slot, so the last scheduled item wins (//pardet:ignore <reason> for audited sinks)", root.Name())
	}
}

// checkCall flags appends to captured containers and global math/rand
// draws inside an indexed work item.
func checkCall(pass *analysis.Pass, lit *ast.FuncLit, call *ast.CallExpr,
	report func(string, token.Pos, string, ...interface{})) {
	if arg, ok := appendDst(pass, call); ok {
		if root, _, _, _ := spine(pass, arg, nil); root != nil && captured(pass, lit, root) {
			report("pardet003", call.Pos(),
				"work item appends to captured slice %s: element order depends on the schedule; write an index-addressed slot instead", root.Name())
		}
		return
	}
	checkGlobalRand(pass, call, report)
}

// checkGlobalRand flags calls of package-level math/rand functions that
// draw from the shared global stream. The New* constructors are exempt:
// rand.New(rand.NewSource(seed)) builds the per-item generator the
// sanctioned pattern calls for and touches no shared state.
func checkGlobalRand(pass *analysis.Pass, call *ast.CallExpr,
	report func(string, token.Pos, string, ...interface{})) {
	obj := analysis.FuncObject(pass.TypesInfo, call)
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil &&
		(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
		fn.Type().(*types.Signature).Recv() == nil &&
		!strings.HasPrefix(fn.Name(), "New") {
		report("pardet006", call.Pos(),
			"work item draws from the global math/rand stream (%s): consumption order follows the schedule; pre-split a seed per item (flow.AttemptSeed)", fn.Name())
	}
}

// appendDst returns the destination argument when call is the append
// builtin.
func appendDst(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	return call.Args[0], true
}

// checkRandIdent flags any use of a captured *rand.Rand inside the work
// item: even seemingly read-only draws advance the shared stream in
// schedule order.
func checkRandIdent(pass *analysis.Pass, lit *ast.FuncLit, id *ast.Ident,
	report func(string, token.Pos, string, ...interface{})) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !captured(pass, lit, obj) {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if analysis.NamedFrom(obj.Type(), "math/rand", "Rand") || analysis.NamedFrom(obj.Type(), "math/rand/v2", "Rand") {
		report("pardet005", id.Pos(),
			"work item uses captured *rand.Rand %s: a shared stream consumed in schedule order differs run to run; pre-split seeds per item (flow.AttemptSeed)", obj.Name())
	}
}

// checkDo cross-checks the zero-parameter closures of one par.Do call:
// a location written by two or more of them is shared mutable state with
// schedule-dependent outcome. (A location one closure alone writes is
// that closure's own slot — cts's t.left/t.right fork.)
func checkDo(pass *analysis.Pass, closures []*ast.FuncLit, ignored map[int]bool) {
	if len(closures) < 2 {
		return
	}
	type site struct {
		pos  token.Pos
		path string
	}
	writers := make(map[string][]int) // path -> closure ordinals (deduped)
	var sites [][]site
	for ci, lit := range closures {
		var mine []site
		seen := make(map[string]bool)
		report := func(id string, pos token.Pos, format string, args ...interface{}) {
			if !ignored[pass.Fset.Position(pos).Line] {
				pass.Reportf(id, pos, format, args...)
			}
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			var targets []ast.Expr
			switch node := n.(type) {
			case *ast.AssignStmt:
				if node.Tok != token.DEFINE {
					for i, lhs := range node.Lhs {
						// x = append(x, …) is one written location, not
						// two: the append-destination visit records it.
						if len(node.Rhs) == len(node.Lhs) {
							if r, _, _, _ := spine(pass, lhs, nil); r != nil && appendsTo(pass, node.Rhs[i], r) {
								continue
							}
						}
						targets = append(targets, lhs)
					}
				}
			case *ast.IncDecStmt:
				targets = []ast.Expr{node.X}
			case *ast.CallExpr:
				// An append destination is a written location like any
				// other: two closures appending to the same captured
				// slice collide, one closure alone owns it.
				if arg, ok := appendDst(pass, node); ok {
					targets = []ast.Expr{arg}
				} else {
					checkGlobalRand(pass, node, report)
				}
			case *ast.Ident:
				checkRandIdent(pass, lit, node, report)
			}
			for _, t := range targets {
				root, _, _, mapWrite := spine(pass, t, nil)
				if root == nil || !captured(pass, lit, root) {
					continue
				}
				p := renderPath(pass, t, mapWrite)
				mine = append(mine, site{pos: t.Pos(), path: p})
				if !seen[p] {
					seen[p] = true
					writers[p] = append(writers[p], ci)
				}
			}
			return true
		})
		sites = append(sites, mine)
	}
	for _, mine := range sites {
		for _, s := range mine {
			if len(writers[s.path]) > 1 && !ignored[pass.Fset.Position(s.pos).Line] {
				pass.Reportf("pardet007", s.pos,
					"multiple par.Do closures write %s: par.Do promises nothing about their interleaving; each closure must own its writes exclusively", s.path)
			}
		}
	}
}

// renderPath renders a write target for cross-closure comparison:
// `t.left` and `t.right` are distinct slots, `buf[0]` and `buf[1]` are
// distinct, `buf[i]` and `buf[j]` conservatively collide, and two writes
// into the same map collide whatever the keys (the map header itself is
// shared structure).
func renderPath(pass *analysis.Pass, expr ast.Expr, mapWrite bool) string {
	var render func(e ast.Expr) string
	render = func(e ast.Expr) string {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			return render(x.X) + "." + x.Sel.Name
		case *ast.StarExpr:
			return "*" + render(x.X)
		case *ast.IndexExpr:
			base := render(x.X)
			if mapWrite {
				return base // keys don't matter: the map is the shared object
			}
			if lit, ok := ast.Unparen(x.Index).(*ast.BasicLit); ok {
				return base + "[" + lit.Value + "]"
			}
			return base + "[?]"
		default:
			return "?" + strconv.Itoa(int(e.Pos()))
		}
	}
	return render(expr)
}

// spine walks an assignment target (or append destination) down to its
// root identifier, noting whether any index along the way is tainted by
// the loop-index parameter and whether the innermost store is a map
// write.
func spine(pass *analysis.Pass, expr ast.Expr, tainted map[types.Object]bool) (root types.Object, sawIndex, sawTaintedIndex, mapWrite bool) {
	first := true
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				root = obj
			}
			return
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			if t := pass.TypesInfo.TypeOf(e.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && first {
					mapWrite = true
				}
			}
			sawIndex = true
			if tainted != nil && referencesTainted(pass, e.Index, tainted) {
				sawTaintedIndex = true
			}
			expr = e.X
		default:
			return
		}
		first = false
	}
}

// captured reports whether obj is declared outside the literal (an
// enclosing function's local, a receiver, or a package variable).
func captured(pass *analysis.Pass, lit *ast.FuncLit, obj types.Object) bool {
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// taintFromIndex computes the set of objects whose value derives from
// the work-item index parameter, by local data flow to a fixpoint:
// x := expr taints x when expr mentions anything tainted, and ranging
// over a tainted collection taints the iteration variables.
func taintFromIndex(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	params := lit.Type.Params.List
	if len(params) != 1 {
		return tainted
	}
	for _, name := range params[0].Names {
		if obj := pass.TypesInfo.Defs[name]; obj != nil {
			tainted[obj] = true
		}
	}
	for round := 0; round < 10; round++ {
		grew := false
		mark := func(id *ast.Ident) {
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil && !tainted[obj] {
				tainted[obj] = true
				grew = true
			}
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				anyTainted := false
				for _, r := range node.Rhs {
					if referencesTainted(pass, r, tainted) {
						anyTainted = true
					}
				}
				if !anyTainted {
					return true
				}
				for _, l := range node.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						mark(id)
					}
				}
			case *ast.RangeStmt:
				if !referencesTainted(pass, node.X, tainted) {
					return true
				}
				for _, k := range []ast.Expr{node.Key, node.Value} {
					if id, ok := k.(*ast.Ident); ok && id != nil {
						mark(id)
					}
				}
			case *ast.GenDecl:
				for _, sp := range node.Specs {
					vs, ok := sp.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && referencesTainted(pass, vs.Values[i], tainted) {
							mark(name)
						} else if len(vs.Values) == 1 && len(vs.Names) > 1 && referencesTainted(pass, vs.Values[0], tainted) {
							mark(name)
						}
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	return tainted
}

// referencesTainted reports whether expr mentions any tainted object.
func referencesTainted(pass *analysis.Pass, expr ast.Expr, tainted map[types.Object]bool) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// appendsTo reports whether rhs is an append whose destination has the
// given root — the x = append(x, …) shape, reported at the call site.
func appendsTo(pass *analysis.Pass, rhs ast.Expr, root types.Object) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	arg, ok := appendDst(pass, call)
	if !ok {
		return false
	}
	argRoot, _, _, _ := spine(pass, arg, nil)
	return argRoot == root
}
