// Fixture for the pardet pass: violating and conforming work items for
// par.ParallelFor and par.Do.
package fixture

import (
	"math/rand"
	"sync"

	"repro/internal/par"
)

// scalarWrites: captured non-slot writes inside indexed work items.
func scalarWrites(vals []float64) float64 {
	var sum float64
	var count int
	par.ParallelFor(4, len(vals), func(i int) {
		sum += vals[i] // want "work item writes captured variable sum"
		count++        // want "work item writes captured variable count"
	})
	return sum
}

// untaintedIndex: an element store whose index does not derive from the
// work-item index.
func untaintedIndex(out []int, k int) {
	par.ParallelFor(2, len(out), func(i int) {
		out[k] = i // want "index that does not derive from the loop-index parameter"
		out[0] = i // want "index that does not derive from the loop-index parameter"
	})
}

// containerGrowth: appends and map writes into captured containers.
func containerGrowth(n int) {
	var got []int
	seen := make(map[int]bool)
	par.ParallelFor(2, n, func(i int) {
		got = append(got, i) // want "appends to captured slice got"
		seen[i] = true       // want "writes into captured map through seen"
	})
	_ = got
}

// sharedRand: captured *rand.Rand and global math/rand draws.
func sharedRand(out []float64) {
	rng := rand.New(rand.NewSource(1))
	par.ParallelFor(2, len(out), func(i int) {
		out[i] = rng.Float64() // want "uses captured .rand.Rand rng"
		_ = rand.Intn(10)      // want "draws from the global math/rand stream"
	})
}

// doCollision: two par.Do closures writing the same captured location.
func doCollision() int {
	var total int
	var left, right int
	par.Do(2,
		func() {
			left = 1
			total += left // want "multiple par.Do closures write total"
		},
		func() {
			right = 2
			total += right // want "multiple par.Do closures write total"
		},
	)
	return total + left + right
}

// doAppendCollision: both closures append to one captured slice.
func doAppendCollision() []int {
	var all []int
	par.Do(2,
		func() { all = append(all, 1) }, // want "multiple par.Do closures write all"
		func() { all = append(all, 2) }, // want "multiple par.Do closures write all"
	)
	return all
}

// conforming: the sanctioned shapes stay silent.
func conforming(nets [][]int, out []int, wl []float64) {
	par.ParallelFor(4, len(nets), func(i int) {
		pins := nets[i] // local derivation taints pins
		total := 0      // := defines a local; never a captured write
		for _, p := range pins {
			total += p
		}
		out[i] = total
	})
	// Derived index through a local: n := lookup[i]; out[n] = ...
	lookup := out
	par.ParallelFor(2, len(out), func(i int) {
		n := lookup[i]
		wl[n] = float64(n)
	})
	// Per-item RNG from a pre-split seed is the sanctioned pattern.
	seeds := make([]int64, len(out))
	par.ParallelFor(2, len(out), func(i int) {
		r := rand.New(rand.NewSource(seeds[i]))
		out[i] = r.Intn(100)
	})
	// Distinct par.Do closure slots (the cts left/right fork shape).
	var lo, hi int
	par.Do(2,
		func() { lo = 1 },
		func() { hi = 2 },
	)
	_, _ = lo, hi
}

// audited: a mutex-guarded sink carries the directive.
func audited(vals []float64) float64 {
	var mu sync.Mutex
	var sum float64
	par.ParallelFor(4, len(vals), func(i int) {
		mu.Lock()
		sum += vals[i] //pardet:ignore mutex-guarded reduction, order-independent sum audited
		mu.Unlock()
	})
	return sum
}
