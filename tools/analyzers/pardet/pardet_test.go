package pardet_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/pardet"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "fixture", pardet.Analyzer)
}

// The engine packages' real fan-outs must all conform: sta's level
// sweeps and RC extraction, route's wirelength kernels, place's
// parallel bisection.
func TestStaExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/sta", "repro/internal/sta", pardet.Analyzer)
}

func TestRouteExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/route", "repro/internal/route", pardet.Analyzer)
}

func TestPlaceExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/place", "repro/internal/place", pardet.Analyzer)
}

// cts's partition kernel forks t.left/t.right across one par.Do call —
// the distinct-slots shape the cross-closure check must accept.
func TestCtsExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/cts", "repro/internal/cts", pardet.Analyzer)
}
