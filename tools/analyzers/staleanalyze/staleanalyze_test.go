package staleanalyze_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/staleanalyze"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "fixture", staleanalyze.Analyzer)
}

func TestCorePackageRule(t *testing.T) {
	analyzertest.Run(t, "testdata/corepkg", "repro/internal/core", staleanalyze.Analyzer)
}

// TestStaExempt runs the pass over the engine's own package, whose
// internal Analyze uses must all be exempt.
func TestStaExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/sta", "repro/internal/sta", staleanalyze.Analyzer)
}
