// Package staleanalyze flags raw sta.Analyze calls where the shared
// incremental Timer must be used instead. A fresh Analyze builds a new
// timing graph from scratch: inside a repair/ECO loop that both wastes
// the incremental engine and — worse — reads the design without the
// journal-driven invalidation the loop's edits rely on. The pass flags
// every sta.Analyze call inside a for/range statement anywhere, and every
// call in internal/core (the repair loops' home) regardless of loop
// context. A deliberate exception carries a trailing
// `//staleanalyze:ignore <reason>` comment on the call's line.
package staleanalyze

import (
	"go/ast"

	"repro/tools/analyzers/analysis"
)

const (
	staPath  = "repro/internal/sta"
	corePath = "repro/internal/core"
)

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "staleanalyze",
	Doc: "flag raw sta.Analyze calls that should use the shared incremental Timer\n\n" +
		"sta.Analyze inside loops (anywhere) or internal/core (anywhere at all)\n" +
		"rebuilds timing state the journal-coupled Timer already maintains;\n" +
		"annotate deliberate uses with //staleanalyze:ignore <reason>.",
	Run: run,
}

// directive is the pass's exception family; ScanDirectives also reports
// malformed instances (typo'd name, missing reason) as findings.
var directive = analysis.DirectiveSpec{
	Name:  "staleanalyze",
	Verbs: map[string]bool{"ignore": true},
}

func run(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	if pkgPath == staPath {
		return nil // the engine's own implementation and helpers
	}
	for _, f := range pass.Files {
		ignored := analysis.ScanDirectives(pass, f, directive)["staleanalyze:ignore"]
		loopDepth := 0
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ForStmt:
				visitLoop(&loopDepth, stmt.Body, walk, stmt.Init, stmt.Cond, stmt.Post)
				return false
			case *ast.RangeStmt:
				visitLoop(&loopDepth, stmt.Body, walk, stmt.Key, stmt.Value, stmt.X)
				return false
			case *ast.CallExpr:
				obj := analysis.FuncObject(pass.TypesInfo, stmt)
				if obj == nil || obj.Name() != "Analyze" || obj.Pkg() == nil || obj.Pkg().Path() != staPath {
					return true
				}
				line := pass.Fset.Position(stmt.Pos()).Line
				if ignored[line] || pass.InTestFile(stmt.Pos()) {
					return true
				}
				switch {
				case loopDepth > 0:
					pass.Reportf("staleanalyze001", stmt.Pos(),
						"raw sta.Analyze inside a loop re-levelizes from scratch each iteration; use the stage Timer's Update (or //staleanalyze:ignore <reason>)")
				case pkgPath == corePath:
					pass.Reportf("staleanalyze002", stmt.Pos(),
						"internal/core must time through the shared incremental Timer, not raw sta.Analyze (or //staleanalyze:ignore <reason>)")
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// visitLoop walks a loop's header parts at the current depth and its body
// one level deeper. A call in a func literal inside the loop still counts
// as in-loop: the closure is overwhelmingly likely to run per iteration,
// and the ignore directive handles the exception.
func visitLoop(depth *int, body *ast.BlockStmt, walk func(ast.Node) bool, header ...ast.Node) {
	for _, h := range header {
		if h != nil {
			ast.Inspect(h, walk)
		}
	}
	*depth++
	ast.Inspect(body, walk)
	*depth--
}
