// Type-checked under the import path repro/internal/core: here every raw
// sta.Analyze is flagged, loop or not, unless annotated.
package fixture

import (
	"repro/internal/netlist"
	"repro/internal/sta"
)

func seed(d *netlist.Design, cfg sta.Config) {
	_, _ = sta.Analyze(d, cfg) // want "internal/core must time through the shared incremental Timer"
	_, _ = sta.Analyze(d, cfg) //staleanalyze:ignore pre-Timer seed analysis
}
