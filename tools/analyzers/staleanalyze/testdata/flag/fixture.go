// Fixture for the staleanalyze pass (type-checked under a neutral import
// path, so only the in-loop rule applies here).
package fixture

import (
	"repro/internal/netlist"
	"repro/internal/sta"
)

func inLoop(d *netlist.Design, cfg sta.Config) {
	for i := 0; i < 3; i++ {
		_, _ = sta.Analyze(d, cfg) // want "raw sta.Analyze inside a loop"
	}
	for range d.Instances {
		if r, err := sta.Analyze(d, cfg); err == nil { // want "raw sta.Analyze inside a loop"
			_ = r
		}
	}
	for {
		f := func() { _, _ = sta.Analyze(d, cfg) } // want "raw sta.Analyze inside a loop"
		f()
		break
	}
}

func annotated(d *netlist.Design, cfg sta.Config) {
	for i := 0; i < 2; i++ {
		_, _ = sta.Analyze(d, cfg) //staleanalyze:ignore fixture exercises the directive
	}
}

// Malformed directives are findings in their own right, and each
// silently fails to suppress the in-loop report below it.
func malformedDirectives(d *netlist.Design, cfg sta.Config) {
	for i := 0; i < 2; i++ {
		//staleanalyze:ignore // want "directive needs a reason"
		_, _ = sta.Analyze(d, cfg) // want "raw sta.Analyze inside a loop"
	}
	for i := 0; i < 2; i++ {
		//staleanalyz:ignore typo'd family name // want "looks like a misspelled //staleanalyze:ignore directive"
		_, _ = sta.Analyze(d, cfg) // want "raw sta.Analyze inside a loop"
	}
	for i := 0; i < 2; i++ {
		//staleanalyze:ignored audited // want "unknown //staleanalyze: directive verb"
		_, _ = sta.Analyze(d, cfg) // want "raw sta.Analyze inside a loop"
	}
}

func outsideLoop(d *netlist.Design, cfg sta.Config) {
	// A one-shot analysis outside any loop is the intended use.
	_, _ = sta.Analyze(d, cfg)
}
