// Fixture for the poolescape pass: a locally declared //pool:scoped
// type plus the cross-package registry (route.NetRC).
package fixture

import "repro/internal/route"

// Shell is a recycled scratch shell; references die at RecycleShell.
//
//pool:scoped
type Shell struct {
	vals []float64
}

var freelist []*Shell

// holder outlives any one extraction epoch.
type holder struct {
	shell *Shell
	byVal Shell
}

var globalShell *Shell

// NewShell hands shells out of the pool.
//
//pool:boundary the allocator is the lifecycle API
func NewShell() *Shell {
	if n := len(freelist); n > 0 {
		s := freelist[n-1]
		freelist = freelist[:n-1]
		return s
	}
	return &Shell{}
}

// RecycleShell takes shells back; the only sanctioned publication.
//
//pool:boundary the recycler owns the freelist
func RecycleShell(s *Shell) {
	freelist = append(freelist, s)
}

func fieldStore(h *holder, s *Shell) {
	h.shell = s // want "stored into a struct field"
	// A by-value copy still aliases the pooled backing storage.
	h.byVal = *s  // want "stored into a struct field"
	h.shell = nil // clearing a slot publishes nothing
}

func pkgVarStore(s *Shell) {
	globalShell = s // want "stored into a package variable"
}

func channelSend(ch chan *Shell, s *Shell) {
	ch <- s // want "sent on a channel"
}

func leakReturn(s *Shell) *Shell {
	return s // want "returned past its recycle/epoch boundary"
}

func literalStore(s *Shell) {
	h := holder{shell: s} // want "stored into a struct literal field"
	_ = h
}

func audited(h *holder, s *Shell) {
	h.shell = s //poolescape:ignore epoch-stamped cache slot, audited in the recycle test
}

func localUse(s *Shell) float64 {
	tmp := s // a new local: stays inside the frame
	var sum float64
	for _, v := range tmp.vals {
		sum += v
	}
	return sum
}

// keeper demonstrates the cross-package registry: route.NetRC is
// pool-scoped even though its marker lives in another package.
type keeper struct {
	rc *route.NetRC
}

func hoardRC(k *keeper, rc *route.NetRC) {
	k.rc = rc // want "stored into a struct field"
}
