package poolescape_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/poolescape"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "fixture", poolescape.Analyzer)
}

// The owning packages themselves must be clean: route's NetRC flows
// only through //pool:boundary lifecycle functions (newNetRC,
// RecycleRC, the RC cache) and partition's PinBuf never leaves the
// carve site.
func TestRouteExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/route", "repro/internal/route", poolescape.Analyzer)
}

func TestPartitionExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/partition", "repro/internal/partition", poolescape.Analyzer)
}

// place's bisectScratch (//pool:scoped) must stay inside its
// sync.Pool lease.
func TestPlaceExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/place", "repro/internal/place", poolescape.Analyzer)
}

// sta holds NetRC slots in the incremental timer's epoch-managed rc
// table — the audited //poolescape:ignore sites.
func TestStaExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/sta", "repro/internal/sta", poolescape.Analyzer)
}
