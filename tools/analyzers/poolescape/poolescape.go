// Package poolescape statically checks the pooled/arena memory
// lifetimes of the dense-data refactor (DESIGN.md §6.8): values of a
// type marked `//pool:scoped` — route's recycled NetRC shells, the
// partition arena's NetBuf-carved pin lists, the per-worker epoch
// scratch of the placer and RSMT builder — are only valid until their
// recycle/epoch boundary (RecycleRC, ResetCells, a sync.Pool Put). A
// reference that outlives that boundary reads storage a later
// extraction is already rewriting: silent corruption that the alloc
// pins and goldens catch only when it happens to change tested output.
//
// The pass flags, anywhere in the repository, a pool-scoped value
// being:
//
//   - stored into a struct field (x.f = v, x.f[i] = v, or as a
//     composite-literal field value),
//   - stored into a package-level variable,
//   - sent on a channel,
//   - returned from a function,
//
// because each hands the reference to an owner whose lifetime the
// pool's boundary cannot see. The sanctioned lifecycle API — the
// allocator handing shells out, the recycler taking them back, the
// cache that owns publication — carries `//pool:boundary <reason>` on
// the function; one-off audited exceptions carry
// `//poolescape:ignore <reason>` on the offending line.
//
// Scoped types are discovered from the `//pool:scoped` marker on their
// declaration in the package under analysis; for cross-package
// checking (the unitchecker analyzes one package at a time, with no
// fact store) the repository's pooled types are also registered here.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "flag //pool:scoped values escaping their recycle/epoch boundary\n\n" +
		"pooled shells and arena-carved buffers stored into fields, package\n" +
		"vars, or channels, or returned, outlive their generation; only\n" +
		"//pool:boundary lifecycle functions may publish them.",
	Run: run,
}

// registry lists the repository's pool-scoped types for cross-package
// analysis (the in-package `//pool:scoped` marker is authoritative when
// the declaring package itself is under analysis).
var registry = map[string]bool{
	"repro/internal/route.NetRC":      true,
	"repro/internal/partition.PinBuf": true,
}

// directives: the marker family on types and lifecycle functions, plus
// the pass's own line-level exception.
var (
	poolDirective = analysis.DirectiveSpec{
		Name:  "pool",
		Verbs: map[string]bool{"scoped": false, "boundary": true},
	}
	ignoreDirective = analysis.DirectiveSpec{
		Name:  "poolescape",
		Verbs: map[string]bool{"ignore": true},
	}
)

func run(pass *analysis.Pass) error {
	// First sweep: validate directives and collect marked lines, then
	// resolve in-package scoped types from their declarations.
	type fileMarks struct {
		scoped, boundary, ignored map[int]bool
	}
	marks := make(map[*ast.File]fileMarks)
	local := make(map[types.Object]bool)
	for _, f := range pass.Files {
		valid := analysis.ScanDirectives(pass, f, poolDirective, ignoreDirective)
		fm := fileMarks{
			scoped:   valid["pool:scoped"],
			boundary: valid["pool:boundary"],
			ignored:  valid["poolescape:ignore"],
		}
		marks[f] = fm
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				return true
			}
			for _, sp := range gd.Specs {
				ts, ok := sp.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if commentOnLines(pass, doc, fm.scoped) {
						if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
							local[obj] = true
						}
					}
				}
			}
			return false
		})
	}

	scoped := func(t types.Type) bool { return scopedType(t, local) }

	for _, f := range pass.Files {
		fm := marks[f]
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.InTestFile(fn.Pos()) {
				continue
			}
			if commentOnLines(pass, fn.Doc, fm.boundary) {
				continue // sanctioned lifecycle API
			}
			checkFunc(pass, fn, scoped, fm.ignored)
		}
	}
	return nil
}

// commentOnLines reports whether any line of the comment group carries a
// validated directive line.
func commentOnLines(pass *analysis.Pass, cg *ast.CommentGroup, lines map[int]bool) bool {
	if cg == nil || len(lines) == 0 {
		return false
	}
	for _, c := range cg.List {
		if lines[pass.Fset.Position(c.Pos()).Line] {
			return true
		}
	}
	return false
}

// scopedType reports whether t is (a pointer to) a pool-scoped named
// type, by in-package marker or cross-package registry.
func scopedType(t types.Type, local map[types.Object]bool) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil {
		return false
	}
	if local[obj] {
		return true
	}
	if obj.Pkg() == nil {
		return false
	}
	return registry[obj.Pkg().Path()+"."+obj.Name()]
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, scoped func(types.Type) bool, ignored map[int]bool) {
	report := func(id string, pos token.Pos, format string, args ...interface{}) {
		if !ignored[pass.Fset.Position(pos).Line] {
			pass.Reportf(id, pos, format, args...)
		}
	}
	typeName := func(e ast.Expr) string {
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return "pool-scoped value"
		}
		return t.String()
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if node.Tok == token.DEFINE {
				return true // new locals: the value stays inside the frame
			}
			for i, lhs := range node.Lhs {
				escaping := false
				if len(node.Rhs) == len(node.Lhs) {
					escaping = scoped(pass.TypesInfo.TypeOf(node.Rhs[i])) && !isNilExpr(pass, node.Rhs[i])
				} else {
					// Tuple assignment from a call: judge by the slot's
					// own type.
					escaping = scoped(pass.TypesInfo.TypeOf(lhs))
				}
				if !escaping {
					continue
				}
				switch classifyTarget(pass, lhs) {
				case targetField:
					report("poolescape001", lhs.Pos(),
						"%s stored into a struct field outlives its recycle/epoch boundary; keep it local or mark the lifecycle function //pool:boundary <reason>", typeName(lhs))
				case targetPkgVar:
					report("poolescape002", lhs.Pos(),
						"%s stored into a package variable outlives its recycle/epoch boundary", typeName(lhs))
				}
			}
		case *ast.SendStmt:
			if scoped(pass.TypesInfo.TypeOf(node.Value)) && !isNilExpr(pass, node.Value) {
				report("poolescape003", node.Value.Pos(),
					"%s sent on a channel escapes to a receiver the pool's boundary cannot see", typeName(node.Value))
			}
		case *ast.ReturnStmt:
			for _, r := range node.Results {
				if scoped(pass.TypesInfo.TypeOf(r)) && !isNilExpr(pass, r) {
					report("poolescape004", r.Pos(),
						"%s returned past its recycle/epoch boundary; only //pool:boundary lifecycle functions may hand shells out", typeName(r))
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(node)
			if t == nil {
				return true
			}
			if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
				return true
			}
			for _, elt := range node.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if scoped(pass.TypesInfo.TypeOf(val)) && !isNilExpr(pass, val) {
					report("poolescape001", val.Pos(),
						"%s stored into a struct literal field outlives its recycle/epoch boundary", typeName(val))
				}
			}
		}
		return true
	})
}

// isNilExpr reports whether the expression is the untyped nil (storing
// nil clears a slot; nothing escapes).
func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

type targetKind int

const (
	targetLocal targetKind = iota
	targetField
	targetPkgVar
)

// classifyTarget walks the assignment target's spine: any field
// selection along the way makes it a field store; a package-variable
// root makes it a package-var store; everything else stays local (a
// local variable, or an element of a local slice/map).
func classifyTarget(pass *analysis.Pass, lhs ast.Expr) targetKind {
	kind := targetLocal
	expr := lhs
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
				return targetField
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
				return targetPkgVar
			}
			return kind
		default:
			return kind
		}
	}
}
