package recoverbare_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/recoverbare"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "fixture", recoverbare.Analyzer)
}

// TestEvalClean runs the pass over internal/eval, whose worker panic
// barrier delegates to flow.Shield rather than recovering itself.
func TestEvalClean(t *testing.T) {
	analyzertest.Run(t, "../../../internal/eval", "repro/internal/eval", recoverbare.Analyzer)
}

// TestFlowExempt: internal/flow owns the panic machinery; its recover()
// calls are the sanctioned ones.
func TestFlowExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/flow", "repro/internal/flow", recoverbare.Analyzer)
}

// TestParExempt: internal/par's worker pool recovers only to re-raise
// worker panics on the caller (as *par.WorkerPanic), which is the
// sanctioned transport to the stage barrier.
func TestParExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/par", "repro/internal/par", recoverbare.Analyzer)
}
