// Fixture for the recoverbare pass.
package fixture

import "repro/internal/flow"

func bad() (err error) {
	defer func() {
		if r := recover(); r != nil { // want "naked recover\(\) outside internal/fault and internal/flow"
			err = nil
		}
	}()
	return nil
}

func alsoBad() {
	defer func() {
		_ = (recover()) // want "naked recover\(\) outside internal/fault and internal/flow"
	}()
}

// good routes the panic through the sanctioned barrier: must not flag.
func good(fn func() error) error {
	return flow.Shield("cpu", "Hetero-M3D", "worker", fn)
}

// shadow declares an ordinary function named recover; calls to it are
// not the builtin and must not flag.
type shadow struct{}

func (shadow) recover() int { return 0 }

func unrelated(s shadow) int {
	return s.recover()
}

// shadowed rebinds the identifier locally; the call resolves to the
// variable, not the builtin, and must not flag.
func shadowed() {
	recover := func() interface{} { return nil }
	_ = recover()
}
