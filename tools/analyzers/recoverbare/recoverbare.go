// Package recoverbare flags naked recover() calls outside internal/fault,
// internal/flow, and internal/par. Panic handling is centralized: the
// stage runner's barrier (flow.Run) and flow.Shield convert panics into
// attributed *flow.PanicError/*flow.Error values, preserving the stack
// and the (design, config, stage) coordinates, and par's worker pool
// re-raises worker panics on the caller as *par.WorkerPanic (stack
// attached) so they reach that same barrier. A recover() anywhere else
// swallows a crash without attribution — the resilience reports then
// undercount panics, and the original stack is lost.
package recoverbare

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// allowed are the packages that implement the centralized panic
// machinery and may therefore call recover() directly.
var allowed = map[string]bool{
	"repro/internal/fault": true,
	"repro/internal/flow":  true,
	// par's worker pool recovers only to re-raise on the calling
	// goroutine (as *par.WorkerPanic, stack preserved) — the transport
	// that carries worker panics to the stage barrier, not a swallow.
	"repro/internal/par": true,
}

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "recoverbare",
	Doc: "flag naked recover() outside internal/fault, internal/flow, and internal/par\n\n" +
		"panic handling is centralized in flow.Run's stage barrier and\n" +
		"flow.Shield; a recover() elsewhere swallows a crash without\n" +
		"attribution and loses the stack.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if allowed[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "recover" {
				return true
			}
			// Only the builtin counts; a shadowing declaration is an
			// ordinary function.
			if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			pass.Reportf("recoverbare001", call.Pos(),
				"naked recover() outside internal/fault and internal/flow; route the panic through flow.Shield (or the stage runner) so it keeps attribution and its stack")
			return true
		})
	}
	return nil
}
