package analysis

import "testing"

func testAnalyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "alpha", Doc: "first pass"},
		{Name: "beta", Doc: "second pass"},
		{Name: "gamma", Doc: "third pass"},
	}
}

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestParseToolArgsDefaultsToAll(t *testing.T) {
	sel, jsonOut, rest, err := parseToolArgs([]string{"pkg.cfg"}, testAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 || jsonOut {
		t.Fatalf("selected %v json=%v, want all three and json off", names(sel), jsonOut)
	}
	if len(rest) != 1 || rest[0] != "pkg.cfg" {
		t.Fatalf("rest = %v, want [pkg.cfg]", rest)
	}
}

func TestParseToolArgsSelection(t *testing.T) {
	sel, jsonOut, rest, err := parseToolArgs([]string{"-beta", "-json", "pkg.cfg"}, testAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0].Name != "beta" {
		t.Fatalf("selected %v, want [beta] only: naming one pass deselects the rest", names(sel))
	}
	if !jsonOut {
		t.Fatal("-json not recognized")
	}
	if len(rest) != 1 || rest[0] != "pkg.cfg" {
		t.Fatalf("rest = %v, want [pkg.cfg]", rest)
	}
}

func TestParseToolArgsMultipleSelection(t *testing.T) {
	sel, _, _, err := parseToolArgs([]string{"-alpha=true", "-gamma", "pkg.cfg"}, testAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "alpha" || sel[1].Name != "gamma" {
		t.Fatalf("selected %v, want [alpha gamma] in registration order", names(sel))
	}
}

func TestParseToolArgsFalseIsNotASelection(t *testing.T) {
	// An explicit -pass=false alone does not narrow the set: only a true
	// flag counts as "the caller named passes to run".
	sel, _, _, err := parseToolArgs([]string{"-beta=false", "pkg.cfg"}, testAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selected %v, want all three", names(sel))
	}
	// Combined with a positive selection it excludes the named pass.
	sel, _, _, err = parseToolArgs([]string{"-alpha", "-beta=false", "pkg.cfg"}, testAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0].Name != "alpha" {
		t.Fatalf("selected %v, want [alpha]", names(sel))
	}
}

func TestParseToolArgsUnknownFlag(t *testing.T) {
	if _, _, _, err := parseToolArgs([]string{"-nosuchpass", "pkg.cfg"}, testAnalyzers()); err == nil {
		t.Fatal("unknown flag accepted; want an error so typos fail loudly")
	}
	if _, _, _, err := parseToolArgs([]string{"-alpha=maybe", "pkg.cfg"}, testAnalyzers()); err == nil {
		t.Fatal("bad boolean value accepted; want an error")
	}
}

func TestToolFlagsCoverEveryAnalyzer(t *testing.T) {
	flags := toolFlags(testAnalyzers())
	want := map[string]bool{"json": true, "alpha": true, "beta": true, "gamma": true}
	for _, f := range flags {
		if !want[f.Name] {
			t.Errorf("unexpected flag %q", f.Name)
		}
		delete(want, f.Name)
		if !f.Bool {
			t.Errorf("flag %q is not boolean; cmd/go only forwards known bool flags", f.Name)
		}
	}
	for name := range want {
		t.Errorf("missing flag %q", name)
	}
}

func TestPassOf(t *testing.T) {
	for id, want := range map[string]string{
		"pardet001":   "pardet",
		"maporder903": "maporder",
		"wallclock":   "wallclock",
	} {
		if got := passOf(id); got != want {
			t.Errorf("passOf(%q) = %q, want %q", id, got, want)
		}
	}
}
