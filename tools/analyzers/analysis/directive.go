package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveSpec describes one comment-directive family an analyzer owns:
// `//Name:verb [reason]` lines, in Go's directive form (no space after
// the slashes). Verbs maps each legal verb to whether it requires a
// trailing free-text reason.
type DirectiveSpec struct {
	// Name is the directive namespace before the colon ("staleanalyze",
	// "pool", "hotpath", ...).
	Name string
	// Verbs maps verb -> reason-required. A reason-required verb with no
	// reason is malformed: a bare exception documents nothing for the
	// next auditor.
	Verbs map[string]bool
}

// directive is one parsed `//name:verb reason` comment.
type directive struct {
	name, verb, reason string
	pos                token.Pos
}

// parseDirective splits a comment into directive form, or reports false
// for ordinary comments. Only Go's machine-directive shape counts: the
// text must follow `//` immediately (no space) and carry a lowercase
// name, a colon, and a verb token.
func parseDirective(c *ast.Comment) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok || text == "" || text[0] == ' ' || text[0] == '\t' || strings.HasPrefix(text, "/") {
		return directive{}, false
	}
	name, rest, ok := strings.Cut(text, ":")
	if !ok || name == "" || !wordLike(name) {
		return directive{}, false
	}
	verb, reason, _ := strings.Cut(rest, " ")
	if verb == "" || !wordLike(verb) {
		return directive{}, false
	}
	// A second `//` starts a separate trailing comment (fixture `// want`
	// markers, cross-references); it is not part of the reason.
	reason, _, _ = strings.Cut(reason, "//")
	return directive{name: name, verb: verb, reason: strings.TrimSpace(reason), pos: c.Pos()}, true
}

// wordLike reports whether s looks like a directive name/verb token:
// lowercase letters and digits only. This keeps URLs ("https://..."),
// key: value prose, and emphatic NOTE: comments out of directive space.
func wordLike(s string) bool {
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// ScanDirectives validates every comment of f against the analyzer's
// directive specs and returns, per "name:verb", the set of source lines
// carrying a well-formed instance. Malformed instances are themselves
// findings (reported through pass): a verb the family does not define, a
// missing reason on a reason-required verb, or a near-miss misspelling
// of the family name — each of which would otherwise silently disable
// the suppression (or marking) the author intended, which is exactly how
// audited exceptions rot.
//
// Validation findings use the 900-series IDs of the calling analyzer:
// <name>901 missing reason, <name>902 unknown verb, <name>903 misspelled
// directive name.
func ScanDirectives(pass *Pass, f *ast.File, specs ...DirectiveSpec) map[string]map[int]bool {
	valid := make(map[string]map[int]bool)
	an := pass.Analyzer.Name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok {
				continue
			}
			inTest := pass.InTestFile(c.Pos())
			for _, spec := range specs {
				if d.name == spec.Name {
					needsReason, known := spec.Verbs[d.verb]
					switch {
					case !known:
						if !inTest {
							pass.Reportf(an+"902", d.pos,
								"unknown //%s: directive verb %q (known: %s)",
								spec.Name, d.verb, verbList(spec))
						}
					case needsReason && d.reason == "":
						if !inTest {
							pass.Reportf(an+"901", d.pos,
								"//%s:%s directive needs a reason: a bare exception documents nothing for the next auditor",
								spec.Name, d.verb)
						}
					default:
						key := spec.Name + ":" + d.verb
						if valid[key] == nil {
							valid[key] = make(map[int]bool)
						}
						valid[key][pass.Fset.Position(d.pos).Line] = true
					}
					break
				}
				// A typo'd family name with one of this family's verbs is
				// almost certainly a misspelled directive: it suppresses
				// nothing while looking like it does.
				if _, knownVerb := spec.Verbs[d.verb]; knownVerb && editDistance(d.name, spec.Name) <= 2 {
					if !inTest {
						pass.Reportf(an+"903", d.pos,
							"//%s:%s looks like a misspelled //%s:%s directive; it has no effect as written",
							d.name, d.verb, spec.Name, d.verb)
					}
					break
				}
			}
		}
	}
	return valid
}

// verbList renders a spec's verbs for diagnostics, sorted for stable
// output.
func verbList(spec DirectiveSpec) string {
	verbs := make([]string, 0, len(spec.Verbs))
	for v := range spec.Verbs {
		verbs = append(verbs, v)
	}
	// insertion sort: the sets are tiny and this avoids an import.
	for i := 1; i < len(verbs); i++ {
		for j := i; j > 0 && verbs[j] < verbs[j-1]; j-- {
			verbs[j], verbs[j-1] = verbs[j-1], verbs[j]
		}
	}
	return strings.Join(verbs, ", ")
}

// editDistance is the Levenshtein distance between two short ASCII
// strings (directive names), used to spot near-miss misspellings.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
