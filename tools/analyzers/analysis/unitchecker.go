package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig is the JSON configuration cmd/go hands a -vettool for each
// package unit (the same schema x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// jsonFlag is the flag-description schema cmd/go expects from a
// vettool's -flags query (mirrors x/tools' analysisflags).
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// toolFlags are the flags this vettool accepts (and therefore advertises
// to cmd/go): one boolean per analyzer to run a subset — the per-pass CI
// legs use `go vet -vettool=... -maporder ./...` so a failure names its
// pass — plus -json for machine-readable JSONL findings.
func toolFlags(analyzers []*Analyzer) []jsonFlag {
	flags := []jsonFlag{{Name: "json", Bool: true,
		Usage: "emit findings as JSON lines ({pass, id, pos, message}) instead of plain text"}}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true,
			Usage: "run only the selected analyzers (default: all): " + strings.SplitN(a.Doc, "\n", 2)[0]})
	}
	return flags
}

// parseToolArgs splits the tool's argument list into options and
// operands. Selecting any analyzer by flag deselects the rest.
func parseToolArgs(args []string, analyzers []*Analyzer) (selected []*Analyzer, jsonOut bool, rest []string, err error) {
	enabled := make(map[string]bool)
	anySelected := false
	i := 0
	for ; i < len(args); i++ {
		arg := args[i]
		if !strings.HasPrefix(arg, "-") || arg == "-" {
			break
		}
		name := strings.TrimLeft(arg, "-")
		val := true
		if n, v, ok := strings.Cut(name, "="); ok {
			name = n
			switch v {
			case "true", "1":
				val = true
			case "false", "0":
				val = false
			default:
				return nil, false, nil, fmt.Errorf("bad boolean flag value %q", arg)
			}
		}
		known := false
		if name == "json" {
			jsonOut, known = val, true
		}
		for _, a := range analyzers {
			if name == a.Name {
				enabled[name], known = val, true
				if val {
					anySelected = true
				}
			}
		}
		if !known {
			return nil, false, nil, fmt.Errorf("unknown flag %q", arg)
		}
	}
	selected = analyzers
	if anySelected {
		selected = nil
		for _, a := range analyzers {
			if enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	return selected, jsonOut, args[i:], nil
}

// Main is the entry point for a vettool binary. It speaks the cmd/go vet
// protocol (-V=full fingerprinting, -flags discovery, one JSON .cfg per
// package unit) and doubles as a standalone driver: invoked with package
// patterns instead of a .cfg it re-executes itself through
// `go vet -vettool`, so `analyzers ./...` works directly.
func Main(analyzers ...*Analyzer) {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	args := os.Args[1:]

	if len(args) == 1 && args[0] == "-V=full" {
		// cmd/go fingerprints the tool for its build cache; a devel
		// version must carry a buildID= field, so hash the executable —
		// any rebuild (edited analyzers included) changes the key.
		id := "unknown"
		if self, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(self); err == nil {
				sum := sha256.Sum256(data)
				id = fmt.Sprintf("%x", sum[:12])
			}
		}
		fmt.Printf("%s version devel buildID=%s\n", progname, id)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		out, err := json.Marshal(toolFlags(analyzers))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}

	selected, jsonOut, rest, err := parseToolArgs(args, analyzers)
	if err != nil || len(rest) == 0 {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		}
		fmt.Fprintf(os.Stderr, `usage:
  %[1]s [-json] [-<analyzer>...] package...   # standalone: runs go vet -vettool=%[1]s
  go vet -vettool=$(command -v %[1]s) [-json] [-<analyzer>...] package...

analyzers:
`, progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		os.Exit(2)
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		diags, err := unitcheck(rest[0], selected, jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		if diags > 0 {
			os.Exit(2)
		}
		return
	}

	// Standalone mode: delegate the package loading to the go toolchain,
	// forwarding the analyzer-selection and output flags.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	vetArgs = append(vetArgs, args...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
}

// jsonDiagnostic is the machine-readable finding record of -json mode,
// one JSON object per line on stderr so per-unit outputs concatenate
// into a single JSONL stream under go vet.
type jsonDiagnostic struct {
	Pass    string `json:"pass"`
	ID      string `json:"id"`
	Pos     string `json:"pos"`
	Message string `json:"message"`
}

// unitcheck analyzes one package unit and returns the diagnostic count.
func unitcheck(cfgFile string, analyzers []*Analyzer, jsonOut bool) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// cmd/go expects the facts file to exist even though these passes
	// export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{Importer: imp}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		tconf.GoVersion = cfg.GoVersion
	}
	info := NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	diags, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		if jsonOut {
			rec, err := json.Marshal(jsonDiagnostic{
				Pass:    passOf(d.ID),
				ID:      d.ID,
				Pos:     fset.Position(d.Pos).String(),
				Message: d.Message,
			})
			if err != nil {
				return 0, err
			}
			fmt.Fprintln(os.Stderr, string(rec))
		} else {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.ID)
		}
	}
	return len(diags), nil
}

// passOf recovers the analyzer name from a stable finding ID
// (`pardet001` -> `pardet`).
func passOf(id string) string {
	return strings.TrimRight(id, "0123456789")
}

// RunAnalyzers executes the passes over one type-checked package and
// returns the findings sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				d.Message = fmt.Sprintf("%s: %s", a.Name, d.Message)
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
