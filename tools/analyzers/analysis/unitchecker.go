package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig is the JSON configuration cmd/go hands a -vettool for each
// package unit (the same schema x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary. It speaks the cmd/go vet
// protocol (-V=full fingerprinting, -flags discovery, one JSON .cfg per
// package unit) and doubles as a standalone driver: invoked with package
// patterns instead of a .cfg it re-executes itself through
// `go vet -vettool`, so `analyzers ./...` works directly.
func Main(analyzers ...*Analyzer) {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	args := os.Args[1:]

	switch {
	case len(args) == 1 && args[0] == "-V=full":
		// cmd/go fingerprints the tool for its build cache; a devel
		// version must carry a buildID= field, so hash the executable —
		// any rebuild (edited analyzers included) changes the key.
		id := "unknown"
		if self, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(self); err == nil {
				sum := sha256.Sum256(data)
				id = fmt.Sprintf("%x", sum[:12])
			}
		}
		fmt.Printf("%s version devel buildID=%s\n", progname, id)
		return
	case len(args) == 1 && args[0] == "-flags":
		// We expose no analyzer flags.
		fmt.Println("[]")
		return
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		diags, err := unitcheck(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		if diags > 0 {
			os.Exit(2)
		}
		return
	case len(args) == 0 || strings.HasPrefix(args[0], "-"):
		fmt.Fprintf(os.Stderr, `usage:
  %[1]s package...              # standalone: runs go vet -vettool=%[1]s
  go vet -vettool=$(command -v %[1]s) package...

analyzers:
`, progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		os.Exit(2)
	}

	// Standalone mode: delegate the package loading to the go toolchain.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
}

// unitcheck analyzes one package unit and returns the diagnostic count.
func unitcheck(cfgFile string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// cmd/go expects the facts file to exist even though these passes
	// export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{Importer: imp}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		tconf.GoVersion = cfg.GoVersion
	}
	info := NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	diags, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return len(diags), nil
}

// RunAnalyzers executes the passes over one type-checked package and
// returns the findings sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				d.Message = fmt.Sprintf("%s: %s", a.Name, d.Message)
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
