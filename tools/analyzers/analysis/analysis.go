// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer/Pass
// surface for this repository's custom vet passes, plus a unitchecker
// implementing the `go vet -vettool` protocol. The build environment is
// offline (no module proxy, empty module cache), so the real x/tools
// framework is not available; the types here mirror its shape so the
// passes could migrate to it mechanically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and CLI listings.
	Name string
	// Doc states the enforced contract (first line = summary).
	Doc string
	// Run executes the pass; it reports findings through the Pass and
	// returns an error only for operational failures.
	Run func(*Pass) error
}

// Pass is the per-package unit of work handed to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position. ID is the finding's stable
// machine-readable code (`pardet001` style): it identifies the *kind* of
// violation independently of message wording, so benchdiff/CI tooling
// can track finding counts across commits even as messages are reworded.
type Diagnostic struct {
	Pos     token.Pos
	ID      string
	Message string
}

// Reportf reports a formatted finding under the given stable ID. Every
// report site owns exactly one ID; IDs are never renumbered or reused,
// only retired.
func (p *Pass) Reportf(id string, pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, ID: id, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file; the passes
// exempt tests, which legitimately construct broken states.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// NewInfo returns a types.Info with every map allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// NamedFrom unwraps pointers and aliases and reports whether t is the
// named type pkgPath.name.
func NamedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// FuncObject resolves a call's callee to its types.Object (nil for
// indirect calls through non-identifiers).
func FuncObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
