package wallclock_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/wallclock"
)

func TestFlagging(t *testing.T) {
	analyzertest.Run(t, "testdata/flag", "repro/internal/sta", wallclock.Analyzer)
}

// Outside the critical set (where the flow metrics layer lives) the
// clock and rand rules stay silent; directive validation remains.
func TestUncheckedPackage(t *testing.T) {
	analyzertest.Run(t, "testdata/unchecked", "fixture", wallclock.Analyzer)
}

// The kernel packages must be genuinely clock-free: their only rand is
// the seeded-constructor pattern and durations come from the flow layer.
func TestStaExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/sta", "repro/internal/sta", wallclock.Analyzer)
}

func TestRouteExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/route", "repro/internal/route", wallclock.Analyzer)
}

func TestPartitionExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/partition", "repro/internal/partition", wallclock.Analyzer)
}

func TestCoreExempt(t *testing.T) {
	analyzertest.Run(t, "../../../internal/core", "repro/internal/core", wallclock.Analyzer)
}
