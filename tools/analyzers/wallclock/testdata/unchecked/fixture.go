// Fixture loaded under a neutral import path: wall-clock and global
// rand are legal outside the determinism-critical set (this is where
// the flow metrics layer lives), but the directive family is still
// validated.
package fixture

import (
	"math/rand"
	"time"
)

// stamp is the flow-metrics shape: wall time around a stage, outside
// the checked set.
func stamp() (time.Time, float64) {
	return time.Now(), rand.Float64() // outside the critical set: not flagged
}

func staleAnnotation() time.Time {
	return time.Now() //wallclock:ignore // want "directive needs a reason"
}
