// Fixture for the wallclock pass, type-checked under a
// determinism-critical import path so the package gate is open.
package fixture

import (
	"math/rand"
	"time"
)

func timed() time.Duration {
	start := time.Now()      // want "time.Now in a determinism-critical package"
	return time.Since(start) // want "time.Since in a determinism-critical package"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until in a determinism-critical package"
}

func jitter(spread float64) float64 {
	return spread * rand.Float64() // want "global rand.Float64 draws from the process-wide stream"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle draws from the process-wide stream"
}

// seeded is the sanctioned pattern: constructors are exempt and methods
// on the explicit generator are fine.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// durations: arithmetic and formatting on time values read no clock.
func durations(d time.Duration) (float64, string) {
	return d.Seconds(), (5 * time.Millisecond).String()
}

// audited carries the pass's exception directive.
func audited() int64 {
	return time.Now().UnixNano() //wallclock:ignore fixture exercises the audited-exception path
}

// bareDirective: a reason-less ignore is a finding (and, attached to
// its own line, suppresses nothing below it).
func bareDirective() time.Time {
	//wallclock:ignore // want "directive needs a reason"
	return time.Now() // want "time.Now in a determinism-critical package"
}
