// Package wallclock flags ambient-nondeterminism sources — wall-clock
// reads and the global math/rand stream — in the determinism-critical
// packages. The flow contract (internal/par's package doc, DESIGN.md
// §6) is that a stage's output is a pure function of (design, config,
// seed): time.Now folded into a result, or rand.Float64 drawn from the
// process-global source, silently breaks byte-identical goldens and
// the resumed-vs-fresh journal replay in ways that reproduce only
// under the wall clock or scheduling that produced them.
//
// In core, eval, report, sta, route, place, cts, and partition the
// pass flags:
//
//   - time.Now / time.Since / time.Until calls (wallclock001). Wall
//     time belongs to the flow layer's stage metrics (flow.Context
//     timings, internal/prof), which live outside the checked set and
//     stamp durations around kernels, never inside them.
//   - package-level math/rand and math/rand/v2 functions — Intn,
//     Float64, Shuffle, Perm, Seed, … — which draw from the shared
//     global stream (wallclock002). Seeded determinism uses an
//     explicit *rand.Rand from core.Config's seed, fanned out
//     per-attempt via the par.AttemptSeed pattern.
//
// Methods on an explicit *rand.Rand are not flagged (that is the
// sanctioned pattern; pardet separately checks such state isn't shared
// across parallel work items). Audited exceptions carry
// `//wallclock:ignore <reason>` on the offending line.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the pass instance.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "flag time.Now/Since and global math/rand in determinism-critical packages\n\n" +
		"stage outputs must be pure functions of (design, config, seed);\n" +
		"wall-clock reads and the global rand stream belong to the flow\n" +
		"metrics layer and the seeded-*rand.Rand pattern respectively.",
	Run: run,
}

// critical is the package set under the purity contract. Wall-time
// metrics (flow.Context stage timings, internal/prof) live outside it
// by design.
var critical = map[string]bool{
	"repro/internal/core":      true,
	"repro/internal/eval":      true,
	"repro/internal/report":    true,
	"repro/internal/sta":       true,
	"repro/internal/route":     true,
	"repro/internal/place":     true,
	"repro/internal/cts":       true,
	"repro/internal/partition": true,
}

// clockFuncs are the package-level time functions that read the wall
// clock. (time.Duration arithmetic and formatting stay legal.)
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// directive is the pass's audited-exception marker.
var directive = analysis.DirectiveSpec{
	Name:  "wallclock",
	Verbs: map[string]bool{"ignore": true},
}

func run(pass *analysis.Pass) error {
	if !critical[pass.Pkg.Path()] {
		for _, f := range pass.Files {
			analysis.ScanDirectives(pass, f, directive)
		}
		return nil
	}
	for _, f := range pass.Files {
		ignored := analysis.ScanDirectives(pass, f, directive)["wallclock:ignore"]
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := analysis.FuncObject(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. on an explicit *rand.Rand) are fine
			}
			if pass.InTestFile(call.Pos()) || ignored[pass.Fset.Position(call.Pos()).Line] {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if clockFuncs[obj.Name()] {
					pass.Reportf("wallclock001", call.Pos(),
						"time.%s in a determinism-critical package: stage outputs must not depend on the wall clock; record durations in the flow metrics layer instead", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				// The New* constructors build the explicit seeded
				// generator the contract calls for; only the stream
				// draws touch shared state.
				if strings.HasPrefix(obj.Name(), "New") {
					return true
				}
				pass.Reportf("wallclock002", call.Pos(),
					"global %s.%s draws from the process-wide stream; use a *rand.Rand seeded from the config (par.AttemptSeed pattern)", obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
	return nil
}
