// Package analyzertest is an offline miniature of
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture
// directory as one package, type-checks it against the repository's
// compiled packages (export data obtained once via `go list -export`),
// runs an analyzer, and diffs the findings against `// want "regexp"`
// comments in the fixtures.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/tools/analyzers/analysis"
)

var (
	exportOnce sync.Once
	exportMap  map[string]string // import path -> export data file
	exportErr  error
)

// exports builds the import-path → export-data map for the whole
// repository plus its (std) dependencies, compiling once through the
// build cache.
func exports(t *testing.T) map[string]string {
	t.Helper()
	exportOnce.Do(func() {
		root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
		if err != nil {
			exportErr = fmt.Errorf("go list -m: %v", err)
			return
		}
		cmd := exec.Command("go", "list", "-export", "-deps",
			"-f", "{{if .Export}}{{.ImportPath}}\t{{.Export}}{{end}}", "./...")
		cmd.Dir = strings.TrimSpace(string(root))
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				err = fmt.Errorf("%v: %s", err, ee.Stderr)
			}
			exportErr = fmt.Errorf("go list -export: %v", err)
			return
		}
		exportMap = make(map[string]string)
		for _, line := range strings.Split(string(out), "\n") {
			if path, file, ok := strings.Cut(strings.TrimSpace(line), "\t"); ok {
				exportMap[path] = file
			}
		}
	})
	if exportErr != nil {
		t.Fatal(exportErr)
	}
	return exportMap
}

// expectation is one `// want "regexp"` marker.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads dir as a single package with import path pkgPath (the path
// matters: passes special-case internal/netlist, internal/core, ...),
// runs the analyzer, and asserts the findings equal the fixtures'
// `// want` expectations.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	exp := exports(t)
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exp[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	pkg, err := (&types.Config{Importer: imp}).Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}

	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := match(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("unexpected finding at %s: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// parseWants extracts the `// want "regexp"` markers of one file.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// Leading form: `// want "re"`. Embedded form, for findings
			// that anchor on a directive comment's own line:
			// `//name:verb ... // want "re"`.
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				if i := strings.Index(text, "// want "); i > 0 {
					text = text[i+len("// "):]
				} else {
					continue
				}
			}
			quoted := strings.TrimSpace(strings.TrimPrefix(text, "want "))
			if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
				t.Fatalf("%s: malformed want comment %q", fset.Position(c.Pos()), c.Text)
			}
			re, err := regexp.Compile(quoted[1 : len(quoted)-1])
			if err != nil {
				t.Fatalf("%s: bad want pattern: %v", fset.Position(c.Pos()), err)
			}
			pos := fset.Position(c.Pos())
			out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// match consumes the first unmatched expectation covering the finding.
func match(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}
