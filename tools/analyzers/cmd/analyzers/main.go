// Command analyzers is the repository's custom vettool bundling the
// nine contract passes:
//
//   - journalmutate — no mutation of journaled snapshot state
//   - staleanalyze  — Timer results read only after (Re)Analyze
//   - statkeys      — AddStat keys come from internal/flow's registry
//   - recoverbare   — recover() only in the centralized panic layers
//   - hotalloc      — no allocation patterns in //hotpath:kernel funcs
//   - pardet        — par.ParallelFor/par.Do closures honor the
//     deterministic-parallelism write contract
//   - poolescape    — //pool:scoped values stay inside their
//     recycle/epoch boundary
//   - maporder      — no order-dependent map ranges in
//     determinism-critical packages
//   - wallclock     — no wall-clock or global-rand reads in
//     determinism-critical packages
//
// Usage:
//
//	go build -o /tmp/analyzers repro/tools/analyzers/cmd/analyzers
//	go vet -vettool=/tmp/analyzers ./...
//
// or, equivalently, standalone (it re-executes itself via go vet):
//
//	/tmp/analyzers ./...
//
// Pass selection: naming one or more analyzer flags runs only those
// passes (go vet -vettool=/tmp/analyzers -maporder ./...). With
// -json, findings are additionally emitted as JSON Lines on stderr
// ({"pass","id","pos","message"}), one object per finding, with the
// stable finding ID (e.g. pardet001) machine-readable.
//
// Exit status: 0 clean, 2 findings, 1 operational failure — so the CI
// analyzers job can gate on it directly.
package main

import (
	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/hotalloc"
	"repro/tools/analyzers/journalmutate"
	"repro/tools/analyzers/maporder"
	"repro/tools/analyzers/pardet"
	"repro/tools/analyzers/poolescape"
	"repro/tools/analyzers/recoverbare"
	"repro/tools/analyzers/staleanalyze"
	"repro/tools/analyzers/statkeys"
	"repro/tools/analyzers/wallclock"
)

func main() {
	analysis.Main(
		journalmutate.Analyzer,
		staleanalyze.Analyzer,
		statkeys.Analyzer,
		recoverbare.Analyzer,
		hotalloc.Analyzer,
		pardet.Analyzer,
		poolescape.Analyzer,
		maporder.Analyzer,
		wallclock.Analyzer,
	)
}
