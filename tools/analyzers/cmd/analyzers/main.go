// Command analyzers is the repository's custom vettool bundling the
// journal/Timer-contract, robustness, and hot-kernel passes:
// journalmutate, staleanalyze, statkeys, recoverbare, hotalloc.
//
// Usage:
//
//	go build -o /tmp/analyzers repro/tools/analyzers/cmd/analyzers
//	go vet -vettool=/tmp/analyzers ./...
//
// or, equivalently, standalone (it re-executes itself via go vet):
//
//	/tmp/analyzers ./...
//
// Exit status: 0 clean, 2 findings, 1 operational failure — so the CI
// analyzers job can gate on it directly.
package main

import (
	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/hotalloc"
	"repro/tools/analyzers/journalmutate"
	"repro/tools/analyzers/recoverbare"
	"repro/tools/analyzers/staleanalyze"
	"repro/tools/analyzers/statkeys"
)

func main() {
	analysis.Main(
		journalmutate.Analyzer,
		staleanalyze.Analyzer,
		statkeys.Analyzer,
		recoverbare.Analyzer,
		hotalloc.Analyzer,
	)
}
