package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line   string
		ok     bool
		name   string
		bytes  int64
		allocs int64
	}{
		{"BenchmarkKernelBisect-8 \t 10\t 1952495 ns/op\t 16048 B/op\t 4 allocs/op", true, "BenchmarkKernelBisect", 16048, 4},
		{"BenchmarkKernelNetRoute \t 10\t 1352 ns/op\t 0 B/op\t 0 allocs/op", true, "BenchmarkKernelNetRoute", 0, 0},
		// Extra custom metrics between the standard pairs are ignored.
		{"BenchmarkX-4   5   99 ns/op   7 widgets/op   128 B/op   2 allocs/op", true, "BenchmarkX", 128, 2},
		{"PASS", false, "", 0, 0},
		{"ok  \trepro/internal/route\t0.1s", false, "", 0, 0},
		// No -benchmem columns: not a usable measurement.
		{"BenchmarkY-8   10   1352 ns/op", false, "", 0, 0},
		// Hyphen in the name is not a GOMAXPROCS suffix.
		{"BenchmarkSweep/n-queens   10   5 ns/op   0 B/op   0 allocs/op", true, "BenchmarkSweep/n-queens", 0, 0},
	}
	for _, tc := range cases {
		m, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseBenchLine(%q) ok=%v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if m.name != tc.name || m.bytesPerOp != tc.bytes || m.allocsPerOp != tc.allocs {
			t.Errorf("parseBenchLine(%q) = %+v, want name=%q bytes=%d allocs=%d",
				tc.line, m, tc.name, tc.bytes, tc.allocs)
		}
	}
}

func TestBudget(t *testing.T) {
	// The floor carries zero baselines; the multiplier carries real ones.
	if got := budget(2.0, 0, 512); got != 512 {
		t.Errorf("budget(2, 0, 512) = %d, want 512", got)
	}
	if got := budget(2.0, 16048, 512); got != 32096 {
		t.Errorf("budget(2, 16048, 512) = %d, want 32096", got)
	}
	if got := budget(2.0, 63, 4); got != 126 {
		t.Errorf("budget(2, 63, 4) = %d, want 126", got)
	}
}

func TestCheckFlagsRegression(t *testing.T) {
	bf := &baselineFile{
		Guard:            2.0,
		FloorBytesPerOp:  512,
		FloorAllocsPerOp: 4,
		Benchmarks: map[string]*baseline{
			"BenchmarkA": {BytesPerOp: 0, AllocsPerOp: 0},
			"BenchmarkB": {BytesPerOp: 1000, AllocsPerOp: 10},
		},
	}
	ok := map[string]measurement{
		"BenchmarkA": {name: "BenchmarkA", bytesPerOp: 400, allocsPerOp: 3},
		"BenchmarkB": {name: "BenchmarkB", bytesPerOp: 1999, allocsPerOp: 20},
	}
	if check(bf, ok) {
		t.Error("check flagged measurements within budget")
	}
	bad := map[string]measurement{
		"BenchmarkA": {name: "BenchmarkA", bytesPerOp: 4096, allocsPerOp: 0},
		"BenchmarkB": {name: "BenchmarkB", bytesPerOp: 1000, allocsPerOp: 10},
	}
	if !check(bf, bad) {
		t.Error("check missed a B/op regression past the floor")
	}
	if !check(bf, map[string]measurement{"BenchmarkB": ok["BenchmarkB"]}) {
		t.Error("check missed a benchmark absent from the output")
	}
}
