// Command benchguard runs the //hotpath:kernel-marked kernels' benchmarks with
// -benchmem and asserts their B/op and allocs/op against the committed
// baselines in BENCH_alloc.json.
//
// The guard is coarse by design: measured <= max(guard × baseline,
// floor). A reintroduced map or per-iteration slice rebuild in a hot
// kernel shows up as thousands of bytes per op and sails past the 2×
// line; scheduler and GC jitter around a zero baseline is absorbed by
// the absolute floors.
//
// Usage:
//
//	go run ./tools/benchguard              # check against BENCH_alloc.json
//	go run ./tools/benchguard -update     # rewrite baselines from a fresh run
//	go run ./tools/benchguard -benchtime 20x
//
// Exit status: 0 within budget, 1 regression or operational failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

type baselineFile struct {
	Description      string               `json:"description"`
	Date             string               `json:"date"`
	CPU              string               `json:"cpu"`
	Guard            float64              `json:"guard"`
	FloorBytesPerOp  int64                `json:"floor_bytes_per_op"`
	FloorAllocsPerOp int64                `json:"floor_allocs_per_op"`
	Benchmarks       map[string]*baseline `json:"benchmarks"`
}

type baseline struct {
	Package     string `json:"package"`
	Workload    string `json:"workload"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// measurement is one parsed `-benchmem` result line.
type measurement struct {
	name        string // benchmark name with any -N GOMAXPROCS suffix stripped
	bytesPerOp  int64
	allocsPerOp int64
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_alloc.json", "baseline file to check (or rewrite with -update)")
	benchtime := flag.String("benchtime", "10x", "go test -benchtime value")
	update := flag.Bool("update", false, "rewrite the baseline file from a fresh run instead of checking")
	flag.Parse()

	bf, err := loadBaselines(*baselinePath)
	if err != nil {
		fatal(err)
	}
	got, err := runBenchmarks(bf, *benchtime)
	if err != nil {
		fatal(err)
	}
	if *update {
		if err := rewrite(*baselinePath, bf, got); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: rewrote %s with %d fresh baselines\n", *baselinePath, len(got))
		return
	}
	if failed := check(bf, got); failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

func loadBaselines(path string) (*baselineFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Guard <= 1 {
		return nil, fmt.Errorf("%s: guard must be > 1, got %v", path, bf.Guard)
	}
	if len(bf.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &bf, nil
}

// runBenchmarks invokes `go test -bench` once per package covering all
// of that package's baselined benchmarks, and returns the parsed
// measurements keyed by benchmark name.
func runBenchmarks(bf *baselineFile, benchtime string) (map[string]measurement, error) {
	byPkg := map[string][]string{}
	for name, b := range bf.Benchmarks {
		byPkg[b.Package] = append(byPkg[b.Package], name)
	}
	pkgs := make([]string, 0, len(byPkg))
	for pkg := range byPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	got := map[string]measurement{}
	for _, pkg := range pkgs {
		names := byPkg[pkg]
		sort.Strings(names)
		pattern := "^(" + strings.Join(names, "|") + ")$"
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", pattern, "-benchmem", "-benchtime", benchtime, pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench %s %s: %w\n%s", pattern, pkg, err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			m, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			got[m.name] = m
		}
	}
	return got, nil
}

// parseBenchLine parses one `go test -benchmem` result line of the form
//
//	BenchmarkName-8   10   1352 ns/op   16048 B/op   4 allocs/op
//
// Value/unit pairs other than B/op and allocs/op are ignored.
func parseBenchLine(line string) (measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return measurement{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	m := measurement{name: name, bytesPerOp: -1, allocsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			m.bytesPerOp = v
		case "allocs/op":
			m.allocsPerOp = v
		}
	}
	if m.bytesPerOp < 0 || m.allocsPerOp < 0 {
		return measurement{}, false
	}
	return m, true
}

// budget is the allowed ceiling for a baseline value.
func budget(guard float64, base, floor int64) int64 {
	b := int64(guard * float64(base))
	if b < floor {
		b = floor
	}
	return b
}

// check prints one line per benchmark and reports whether any exceeded
// its budget (or went missing).
func check(bf *baselineFile, got map[string]measurement) (failed bool) {
	names := make([]string, 0, len(bf.Benchmarks))
	for name := range bf.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := bf.Benchmarks[name]
		m, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %-34s missing from bench output (renamed or deleted?)\n", name)
			failed = true
			continue
		}
		maxB := budget(bf.Guard, base.BytesPerOp, bf.FloorBytesPerOp)
		maxA := budget(bf.Guard, base.AllocsPerOp, bf.FloorAllocsPerOp)
		status := "ok  "
		if m.bytesPerOp > maxB || m.allocsPerOp > maxA {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-34s %6d B/op (budget %6d)  %4d allocs/op (budget %4d)\n",
			status, name, m.bytesPerOp, maxB, m.allocsPerOp, maxA)
	}
	if failed {
		fmt.Println("benchguard: hot-kernel allocation budget exceeded; if the growth is intended, regenerate with: go run ./tools/benchguard -update")
	}
	return failed
}

// rewrite stores the fresh measurements back into the baseline file,
// preserving its prose fields and guard settings.
func rewrite(path string, bf *baselineFile, got map[string]measurement) error {
	for name, base := range bf.Benchmarks {
		m, ok := got[name]
		if !ok {
			return fmt.Errorf("benchmark %s missing from bench output", name)
		}
		base.BytesPerOp = m.bytesPerOp
		base.AllocsPerOp = m.allocsPerOp
	}
	raw, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
