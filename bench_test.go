// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact from scratch and
// prints it, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The design scale defaults to 0.25 of
// the paper's netlist sizes to keep a full sweep in CI territory; pass
//
//	go test -bench=. -scale=1.0
//
// for paper-scale runs (netcard ≈ 250 k cells — minutes per config, pure
// Go). The suite (f_max sweeps + 5 configurations × 4 designs) is built
// once and shared by the table benchmarks.
package repro_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/designs"
	"repro/internal/eval"
	"repro/internal/report"
)

var (
	benchScale = flag.Float64("scale", 0.25, "design scale for the benchmark suite (1.0 = paper size)")
	benchSeed  = flag.Int64("benchseed", 1, "generation/partition seed")
	svgDir     = flag.String("svgdir", "", "directory for Fig. 3/4 SVGs (empty = skip files)")
)

var (
	suiteOnce sync.Once
	suiteVal  *eval.Suite
	suiteErr  error
)

// suite builds the full evaluation exactly once per `go test` process.
func suite(b *testing.B) *eval.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		opt := eval.DefaultSuiteOptions(*benchScale)
		opt.Seed = *benchSeed
		opt.Events = &eval.LogSink{W: os.Stderr}
		suiteVal, suiteErr = eval.RunSuite(context.Background(), opt)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

func printOnce(b *testing.B, artifact string) {
	if b.N > 0 {
		fmt.Println(artifact)
	}
}

// BenchmarkFig1 renders the five-configuration diagram.
func BenchmarkFig1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig1()
	}
	printOnce(b, out)
}

// BenchmarkTableI regenerates the qualitative PPAC ranking from measured
// data.
func BenchmarkTableI(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.TableI().String()
	}
	printOnce(b, out)
}

// BenchmarkTableII runs the FO-4 driver-output boundary experiment
// (Fig. 2a) on the switch-level simulator.
func BenchmarkTableII(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		t, err := eval.TableII()
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	printOnce(b, out)
}

// BenchmarkTableIII runs the FO-4 driver-input boundary experiment
// (Fig. 2b).
func BenchmarkTableIII(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		t, err := eval.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	printOnce(b, out)
}

// BenchmarkTableIV evaluates the cost model.
func BenchmarkTableIV(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = eval.TableIV().String()
	}
	printOnce(b, out)
}

// BenchmarkTableV runs the flow ablation: plain Pin-3D vs Hetero-Pin-3D
// on the CPU design.
func BenchmarkTableV(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		t, err := eval.TableV(*benchScale, *benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	printOnce(b, out)
}

// BenchmarkTableVI renders the raw heterogeneous PPAC of all four
// designs.
func BenchmarkTableVI(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.TableVI().String()
	}
	printOnce(b, out)
}

// BenchmarkTableVII renders the hetero-vs-homogeneous percent deltas.
func BenchmarkTableVII(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.TableVII().String()
	}
	printOnce(b, out)
}

// BenchmarkTableVIII renders the CPU clock/critical-path/memory deep
// dive.
func BenchmarkTableVIII(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := s.TableVIII()
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	printOnce(b, out)
}

// BenchmarkFig3 regenerates the CPU placement/density views (ASCII here;
// SVGs when -svgdir is set).
func BenchmarkFig3(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		f, err := s.Fig3(*svgDir)
		if err != nil {
			b.Fatal(err)
		}
		out = f
	}
	printOnce(b, out)
}

// BenchmarkFig4 regenerates the clock/memory/critical-path overlays.
func BenchmarkFig4(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		f, err := s.Fig4(*svgDir)
		if err != nil {
			b.Fatal(err)
		}
		out = f
	}
	printOnce(b, out)
}

// BenchmarkSuite measures the cost of one full evaluation (f_max sweeps
// plus 20 flow runs) at a small scale, independent of the shared suite.
func BenchmarkSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := eval.DefaultSuiteOptions(0.02)
		opt.Designs = []designs.Name{designs.AES}
		if _, err := eval.RunSuite(context.Background(), opt); err != nil {
			b.Fatal(err)
		}
	}
}
