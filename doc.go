// Package repro is a from-scratch Go reproduction of "Heterogeneous
// Monolithic 3D ICs: EDA Solutions, and Power, Performance, Cost
// Tradeoffs" (Pentapati & Lim, DAC 2021; journal version IEEE TVLSI
// 2024): a complete physical-design substrate (libraries, placement,
// routing estimation, STA, CTS, partitioning, cost model, switch-level
// simulation) and the Hetero-Pin-3D flow built on top of it.
//
// The implementation lives under internal/; the executables under cmd/
// and the runnable walkthroughs under examples/ are the public surface.
// bench_test.go regenerates every table and figure of the paper's
// evaluation — see DESIGN.md for the experiment index and EXPERIMENTS.md
// for measured-vs-paper results.
package repro
