// Intra-flow parallelism benchmarks: the bounded worker-pool kernels
// (internal/par) against their serial selves, on the workloads the flow
// engine actually fans out — the bisection placement frontier, the
// per-net RSMT/RC reductions, and one complete implementation flow.
// Results are byte-identical at any worker count (pinned by the
// workers-matrix and kernel equivalence tests); only wall-clock may
// move. BENCH_par.json records a reference run with the measurement
// caveats. Pass -flowworkers to vary the parallel width:
//
//	go test -run xxx -bench 'Par|PlaceBisect|RSMTFanout' -benchtime 3x -flowworkers 8 .
package repro_test

import (
	"context"
	"flag"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/place"
	"repro/internal/route"
)

var benchFlowWorkers = flag.Int("flowworkers", 8, "parallel width for the workers>1 sub-benchmarks")

// BenchmarkPlaceBisect runs the full recursive-bisection global placement
// of netcard serially and on the worker pool. The frontier doubles each
// level, so the parallel win grows with depth once the pool saturates.
func BenchmarkPlaceBisect(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("workers%d", *benchFlowWorkers), *benchFlowWorkers},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d, _ := benchDesign(b, *benchScale)
			region := geom.R(0, 0, 400, 400)
			opt := place.DefaultGlobalOptions()
			opt.Workers = tc.workers
			stats := &par.Stats{}
			opt.Par = stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := place.Global(d, region, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.Batches)/float64(b.N), "batches/op")
			b.ReportMetric(float64(stats.Tasks)/float64(b.N), "tasks/op")
		})
	}
}

// BenchmarkRSMTFanout measures the whole-design routing reductions —
// per-net RSMT wirelength and MIV counting — serial vs pooled. Each net
// is an independent task; this is the flow's most embarrassingly
// parallel kernel.
func BenchmarkRSMTFanout(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("workers%d", *benchFlowWorkers), *benchFlowWorkers},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d, _ := benchDesign(b, *benchScale)
			r := route.New()
			r.Workers = tc.workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sig, clk := r.Wirelength(d)
				if sig <= 0 && clk <= 0 {
					b.Fatal("degenerate wirelength")
				}
				_ = r.TotalMIVs(d)
			}
		})
	}
}

// BenchmarkFlowParallel implements netcard end to end (Hetero-M3D — the
// flow with every parallel kernel: bisection placement, routing
// reductions, level-parallel STA, clustered CTS) at FlowWorkers 1 vs N.
// The wall-clock ratio is the intra-flow parallelism payoff; the results
// themselves are identical by construction.
func BenchmarkFlowParallel(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("workers%d", *benchFlowWorkers), *benchFlowWorkers},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d, _ := benchDesign(b, *benchScale)
			opt := core.DefaultOptions(benchPeriod)
			opt.FlowWorkers = tc.workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(context.Background(), d, core.ConfigHetero, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
